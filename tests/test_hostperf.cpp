// Host-path performance machinery: word-wise diff scanning, page-buffer
// pooling, and the scheduler fast paths. Everything here checks the same
// contract from a different angle: the fast implementations must be
// *observationally identical* to the slow (seed) ones — same diff runs,
// same buffer contents, same virtual times — differing only in host work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "core/carina.hpp"
#include "core/cluster.hpp"
#include "core/diff.hpp"
#include "mem/pool.hpp"
#include "sim/engine.hpp"
#include "sim/slowpath.hpp"

namespace {

using argocore::DiffRun;
using argocore::diff_runs;
using argocore::diff_runs_reference;
using argocore::kDiffMergeGap;

// Restores the process-wide slow-path toggle on scope exit so a failing
// test cannot leak ARGO_SLOW_PATHS semantics into later tests.
struct SlowGuard {
  bool prev = argosim::slow_paths();
  ~SlowGuard() { argosim::set_slow_paths(prev); }
};

// ---------------------------------------------------------------------------
// Word-wise diff scanner vs the reference byte scanner

std::vector<DiffRun> scan_reference(const std::vector<std::byte>& cur,
                                    const std::vector<std::byte>& twin) {
  std::vector<DiffRun> out;
  diff_runs_reference(cur.data(), twin.data(), cur.size(), out);
  return out;
}

std::vector<DiffRun> scan_fast(const std::vector<std::byte>& cur,
                               const std::vector<std::byte>& twin) {
  std::vector<DiffRun> out;
  diff_runs(cur.data(), twin.data(), cur.size(), out);
  return out;
}

std::size_t wire_bytes(const std::vector<DiffRun>& runs) {
  std::size_t n = 0;
  for (const DiffRun& r : runs) n += r.len + 8;
  return n;
}

// The equivalence check every case below funnels through: identical run
// sequences (offsets and lengths) and hence identical wire-byte charges.
void expect_identical(const std::vector<std::byte>& cur,
                      const std::vector<std::byte>& twin) {
  ASSERT_EQ(cur.size(), twin.size());
  const auto ref = scan_reference(cur, twin);
  const auto fast = scan_fast(cur, twin);
  ASSERT_EQ(ref.size(), fast.size()) << "page size " << cur.size();
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_EQ(ref[k].off, fast[k].off) << "run " << k;
    EXPECT_EQ(ref[k].len, fast[k].len) << "run " << k;
  }
  EXPECT_EQ(wire_bytes(ref), wire_bytes(fast));
}

std::vector<std::byte> bytes(std::size_t n, std::uint8_t fill = 0xAA) {
  return std::vector<std::byte>(n, std::byte{fill});
}

TEST(DiffRuns, AllEqualAndAllDifferent) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{8}, std::size_t{63},
                              std::size_t{4096}}) {
    auto cur = bytes(n);
    auto twin = bytes(n);
    expect_identical(cur, twin);
    EXPECT_TRUE(scan_fast(cur, twin).empty());
    for (auto& b : cur) b = std::byte{0x55};
    expect_identical(cur, twin);
    if (n > 0) {
      const auto runs = scan_fast(cur, twin);
      ASSERT_EQ(runs.size(), 1u);
      EXPECT_EQ(runs[0].off, 0u);
      EXPECT_EQ(runs[0].len, n);
    }
  }
}

TEST(DiffRuns, SingleByteAtEveryOffsetOfASmallPage) {
  // Exhaustive over a three-word page: every position, including the first
  // and last byte of every word and of the buffer.
  constexpr std::size_t n = 24;
  for (std::size_t pos = 0; pos < n; ++pos) {
    auto cur = bytes(n);
    auto twin = bytes(n);
    cur[pos] = std::byte{0x00};
    expect_identical(cur, twin);
    const auto runs = scan_fast(cur, twin);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].off, pos);
    EXPECT_EQ(runs[0].len, 1u);
  }
}

TEST(DiffRuns, TrailingByteOfAFullPage) {
  auto cur = bytes(4096);
  auto twin = bytes(4096);
  cur[4095] = std::byte{0};
  expect_identical(cur, twin);
}

TEST(DiffRuns, TailShorterThanAWord) {
  // Sizes with a sub-8-byte tail, with changes confined to the tail.
  for (const std::size_t n : {std::size_t{9}, std::size_t{15}, std::size_t{37},
                              std::size_t{4093}}) {
    for (std::size_t back = 1; back <= 3 && back <= n; ++back) {
      auto cur = bytes(n);
      auto twin = bytes(n);
      cur[n - back] = std::byte{1};
      expect_identical(cur, twin);
    }
  }
}

TEST(DiffRuns, GapsAroundTheMergeThreshold) {
  // Two dirty bytes separated by every gap width around kDiffMergeGap, the
  // pair swept across word phases so the gap straddles 0, 1 or 2 word
  // boundaries. gap < 8 must merge into one run; gap >= 8 must split.
  for (std::size_t gap = kDiffMergeGap - 3; gap <= kDiffMergeGap + 3; ++gap) {
    for (std::size_t phase = 0; phase < 8; ++phase) {
      auto cur = bytes(64);
      auto twin = bytes(64);
      const std::size_t a = 8 + phase;
      const std::size_t b = a + 1 + gap;
      ASSERT_LT(b, cur.size());
      cur[a] = std::byte{1};
      cur[b] = std::byte{2};
      expect_identical(cur, twin);
      const auto runs = scan_fast(cur, twin);
      if (gap < kDiffMergeGap) {
        ASSERT_EQ(runs.size(), 1u) << "gap " << gap << " phase " << phase;
        EXPECT_EQ(runs[0].off, a);
        EXPECT_EQ(runs[0].len, b - a + 1);
      } else {
        ASSERT_EQ(runs.size(), 2u) << "gap " << gap << " phase " << phase;
        EXPECT_EQ(runs[0], (DiffRun{a, 1}));
        EXPECT_EQ(runs[1], (DiffRun{b, 1}));
      }
    }
  }
}

TEST(DiffRuns, RunsAlignedToWordBoundaries) {
  // Whole dirty words with whole equal words between them: the pure
  // word-stepping path on both sides of the threshold (8 equal bytes ends
  // the run exactly at the boundary; the next word starts the next run).
  auto cur = bytes(64);
  auto twin = bytes(64);
  for (std::size_t k = 0; k < 8; k += 2)
    for (std::size_t b = 0; b < 8; ++b) cur[k * 8 + b] = std::byte{7};
  expect_identical(cur, twin);
  const auto runs = scan_fast(cur, twin);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(runs[k], (DiffRun{k * 16, 8})) << "run " << k;
}

TEST(DiffRuns, RandomizedAdversarialPages) {
  // Randomized property sweep: several mutation regimes over page-sized and
  // odd-sized buffers, fixed seed. Each case is checked run-for-run against
  // the reference scanner.
  std::mt19937 rng(20260805u);
  const std::size_t sizes[] = {24, 37, 64, 127, 512, 4095, 4096};
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = sizes[rng() % std::size(sizes)];
    std::vector<std::byte> twin(n);
    for (auto& b : twin) b = std::byte(rng() & 0xff);
    auto cur = twin;
    switch (iter % 4) {
      case 0: {  // sparse independent byte flips
        const int flips = 1 + static_cast<int>(rng() % 16);
        for (int f = 0; f < flips; ++f)
          cur[rng() % n] = std::byte(rng() & 0xff);
        break;
      }
      case 1: {  // dirty runs separated by gaps hovering around the threshold
        std::size_t pos = rng() % 8;
        while (pos < n) {
          const std::size_t len = 1 + rng() % 12;
          for (std::size_t b = pos; b < std::min(n, pos + len); ++b)
            cur[b] = std::byte(~static_cast<std::uint8_t>(twin[b]));
          pos += len + (kDiffMergeGap - 2 + rng() % 5);  // gaps 6..10
        }
        break;
      }
      case 2: {  // dense: every byte differs with p = 1/2
        for (std::size_t b = 0; b < n; ++b)
          if (rng() & 1) cur[b] = std::byte(~static_cast<std::uint8_t>(twin[b]));
        break;
      }
      default: {  // word-aligned dirty words, random selection
        for (std::size_t w = 0; w + 8 <= n; w += 8)
          if ((rng() & 3) == 0)
            for (std::size_t b = w; b < w + 8; ++b)
              cur[b] = std::byte(rng() & 0xff);
        break;
      }
    }
    expect_identical(cur, twin);
  }
}

TEST(DiffRuns, SlowPathsSelectsReferenceInsideCarina) {
  // The toggle itself: under ARGO_SLOW_PATHS the pool hands out fresh
  // zeroed buffers (allocator behaviour of the seed).
  SlowGuard guard;
  argosim::set_slow_paths(true);
  argomem::BufferPool pool;
  auto a = pool.acquire(64);
  auto b = pool.acquire(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.get()[i], std::byte{0});
    EXPECT_EQ(b.get()[i], std::byte{0});
  }
  a.reset();
  EXPECT_EQ(pool.pooled_buffers(), 0u);  // slow paths never pool
  auto c = pool.acquire(64);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.allocations(), 3u);
}

// ---------------------------------------------------------------------------
// BufferPool / PageBuf

TEST(BufferPool, RecyclesBlocksPerSizeClass) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto small = pool.acquire(4096);
  auto big = pool.acquire(8192);
  std::byte* const small_block = small.get();
  std::byte* const big_block = big.get();
  EXPECT_EQ(small.size(), 4096u);
  EXPECT_TRUE(static_cast<bool>(small));
  small.reset();
  big.reset();
  EXPECT_FALSE(static_cast<bool>(small));
  EXPECT_EQ(pool.pooled_buffers(), 2u);
  // Same sizes come back as the same blocks, most-recently-released first.
  auto small2 = pool.acquire(4096);
  auto big2 = pool.acquire(8192);
  EXPECT_EQ(small2.get(), small_block);
  EXPECT_EQ(big2.get(), big_block);
  EXPECT_EQ(pool.allocations(), 2u);
  EXPECT_EQ(pool.reuses(), 2u);
  EXPECT_EQ(pool.pooled_buffers(), 0u);
}

TEST(BufferPool, FreshAllocationsAreZeroed) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto buf = pool.acquire(4096);
  for (std::size_t i = 0; i < 4096; ++i)
    ASSERT_EQ(buf.get()[i], std::byte{0}) << "byte " << i;
}

TEST(BufferPool, MoveTransfersOwnershipWithoutMovingBytes) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argomem::BufferPool pool;
  auto a = pool.acquire(64);
  a.get()[0] = std::byte{42};
  std::byte* const block = a.get();
  argomem::PageBuf b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(b.get(), block);
  EXPECT_EQ(b.get()[0], std::byte{42});
  b.reset();
  EXPECT_EQ(pool.pooled_buffers(), 1u);
}

TEST(BufferPool, CarinaReusesBuffersInSteadyState) {
  // End-to-end: a repeated shared-write workload must recycle twins and
  // line buffers instead of allocating fresh ones every round (each
  // barrier's SD drains the twins and its SI drops the lines, so every
  // round re-acquires both).
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 1;
  c.global_mem_bytes = 64 * argomem::kPageSize;
  argo::Cluster cl(c);
  auto arr = cl.alloc<std::uint64_t>(8 * (argomem::kPageSize / 8));
  const std::size_t per_page = argomem::kPageSize / 8;
  cl.reset_classification();
  cl.run([&](argo::Thread& th) {
    for (int round = 0; round < 10; ++round) {
      for (std::size_t p = 0; p < 8; ++p)
        th.store(arr.at(p * per_page + static_cast<std::size_t>(th.node())),
                 static_cast<std::uint64_t>(round));
      th.barrier();
    }
  });
  std::uint64_t reuses = 0;
  for (int n = 0; n < c.nodes; ++n)
    reuses += cl.node_cache(n).buffer_pool().reuses();
  EXPECT_GT(reuses, 0u);
}

// ---------------------------------------------------------------------------
// Scheduler fast paths

TEST(EngineFastForward, LoneFiberNeverRoundTripsThroughTheScheduler) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argosim::Engine eng;
  eng.spawn("solo", [] {
    for (int i = 0; i < 100; ++i) argosim::delay(10);
  });
  eng.run();
  EXPECT_EQ(eng.now(), 1000u);
  // The first delay may or may not fast-forward (spawn queues an entry);
  // once running alone, every subsequent delay must.
  EXPECT_GE(eng.delay_fast_forwards(), 99u);
}

TEST(EngineFastForward, VirtualTimesMatchSlowPathsExactly) {
  // The same two-fiber interleaving, fast vs slow: every observed
  // (virtual time, fiber, step) triple must be identical.
  using Obs = std::vector<std::pair<argosim::Time, int>>;
  auto run_once = [](bool slow) {
    SlowGuard guard;
    argosim::set_slow_paths(slow);
    argosim::Engine eng;
    Obs obs;
    eng.spawn("a", [&] {
      for (int i = 0; i < 50; ++i) {
        argosim::delay(7);
        obs.emplace_back(argosim::now(), 0);
      }
    });
    eng.spawn("b", [&] {
      for (int i = 0; i < 50; ++i) {
        argosim::delay(11);
        obs.emplace_back(argosim::now(), 1);
      }
    });
    eng.run();
    obs.emplace_back(eng.now(), -1);
    return obs;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(EngineFastForward, YieldFairnessSurvivesTies) {
  // Fibers that yield at the same instant must round-robin identically
  // with the fast path on (ties must go through the scheduler).
  auto run_once = [](bool slow) {
    SlowGuard guard;
    argosim::set_slow_paths(slow);
    argosim::Engine eng;
    std::vector<int> order;
    for (int f = 0; f < 3; ++f) {
      eng.spawn("t" + std::to_string(f), [&order, f] {
        for (int i = 0; i < 5; ++i) {
          order.push_back(f);
          argosim::yield();
        }
      });
    }
    eng.run();
    return order;
  };
  const auto fast = run_once(false);
  EXPECT_EQ(fast, run_once(true));
}

TEST(EngineFastForward, DisabledUnderSlowPaths) {
  SlowGuard guard;
  argosim::set_slow_paths(true);
  argosim::Engine eng;
  eng.spawn("solo", [] {
    for (int i = 0; i < 10; ++i) argosim::delay(1);
  });
  eng.run();
  EXPECT_EQ(eng.now(), 10u);
  EXPECT_EQ(eng.delay_fast_forwards(), 0u);
  EXPECT_EQ(eng.stacks_reused(), 0u);
}

TEST(EngineFastForward, StackPoolRecyclesSequentialSpawns) {
  SlowGuard guard;
  argosim::set_slow_paths(false);
  argosim::Engine eng;
  // Spawn fibers from inside the simulation so earlier ones finish (and
  // donate their stacks) before later ones start.
  eng.spawn("spawner", [&eng] {
    for (int i = 0; i < 8; ++i) {
      eng.spawn("child" + std::to_string(i), [] { argosim::delay(1); });
      argosim::delay(10);
    }
  });
  eng.run();
#if !defined(__SANITIZE_ADDRESS__)
  // ASan builds intentionally allocate every stack fresh.
  EXPECT_GT(eng.stacks_reused(), 0u);
#endif
}

}  // namespace
