// Tests for the baselines: MPI-like library, PGAS arrays, active-handler
// DSM (src/baseline).
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "baseline/active_dsm.hpp"
#include "baseline/mpi.hpp"
#include "baseline/pgas.hpp"
#include "core/cluster.hpp"

namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::Thread;
using argobaseline::ActiveDsm;
using argobaseline::ActiveThread;
using argomem::gptr;
using argomem::kPageSize;
using argompi::kAnySource;
using argompi::MpiWorld;
using argonet::Interconnect;
using argonet::NetConfig;
using argosim::Engine;
using argosim::Time;

// ---------------------------------------------------------------------------
// MPI library
// ---------------------------------------------------------------------------

struct MpiHarness {
  explicit MpiHarness(int nodes, int ranks_per_node)
      : net(nodes, NetConfig{}),
        world(net, nodes * ranks_per_node, ranks_per_node) {}
  Engine eng;
  Interconnect net;
  MpiWorld world;

  void run(const std::function<void(int)>& rank_body) {
    for (int r = 0; r < world.size(); ++r)
      eng.spawn("rank" + std::to_string(r), [&, r] { rank_body(r); });
    eng.run();
  }
};

TEST(Mpi, PingPong) {
  MpiHarness h(2, 1);
  h.run([&](int me) {
    double v = 0;
    if (me == 0) {
      v = 3.14;
      h.world.send(0, 1, 7, &v, sizeof(v));
      h.world.recv(0, 1, 8, &v, sizeof(v));
      EXPECT_DOUBLE_EQ(v, 6.28);
    } else {
      h.world.recv(1, 0, 7, &v, sizeof(v));
      v *= 2;
      h.world.send(1, 0, 8, &v, sizeof(v));
    }
  });
}

TEST(Mpi, FifoPerSenderAndTagMatching) {
  MpiHarness h(2, 1);
  h.run([&](int me) {
    if (me == 0) {
      for (int i = 0; i < 5; ++i) h.world.send(0, 1, 1, &i, sizeof(i));
      int x = 99;
      h.world.send(0, 1, 2, &x, sizeof(x));
    } else {
      int v;
      h.world.recv(1, 0, 2, &v, sizeof(v));  // tag 2 first, out of order
      EXPECT_EQ(v, 99);
      for (int i = 0; i < 5; ++i) {
        h.world.recv(1, 0, 1, &v, sizeof(v));
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Mpi, AnySource) {
  MpiHarness h(4, 1);
  h.run([&](int me) {
    if (me == 0) {
      int sum = 0, v;
      for (int i = 0; i < 3; ++i) {
        int src = h.world.recv(0, kAnySource, 5, &v, sizeof(v));
        EXPECT_EQ(v, src * 10);
        sum += v;
      }
      EXPECT_EQ(sum, 60);
    } else {
      int v = me * 10;
      h.world.send(me, 0, 5, &v, sizeof(v));
    }
  });
}

TEST(Mpi, IntraNodeIsCheaperThanInterNode) {
  MpiHarness h(2, 2);  // ranks 0,1 on node 0; ranks 2,3 on node 1
  Time intra = 0, inter = 0;
  h.run([&](int me) {
    std::vector<double> buf(512);
    if (me == 0) {
      Time t0 = argosim::now();
      h.world.send(0, 1, 1, buf.data(), buf.size() * 8);  // same node
      intra = argosim::now() - t0;
      t0 = argosim::now();
      h.world.send(0, 2, 2, buf.data(), buf.size() * 8);  // cross node
      inter = argosim::now() - t0;
    } else if (me == 1) {
      h.world.recv(1, 0, 1, buf.data(), buf.size() * 8);
    } else if (me == 2) {
      h.world.recv(2, 0, 2, buf.data(), buf.size() * 8);
    }
  });
  EXPECT_LT(intra, inter);
}

TEST(Mpi, BarrierSynchronizes) {
  MpiHarness h(4, 2);
  std::vector<int> phase(8, 0);
  h.run([&](int me) {
    for (int round = 0; round < 3; ++round) {
      argosim::delay(static_cast<Time>((me + 1) * 50));
      phase[me] = round + 1;
      h.world.barrier(me);
      for (int r = 0; r < 8; ++r) EXPECT_GE(phase[r], round + 1);
    }
  });
}

TEST(Mpi, BcastReduceAllreduceGather) {
  MpiHarness h(4, 2);  // 8 ranks
  h.run([&](int me) {
    // bcast
    std::vector<double> data(16, me == 2 ? 1.5 : 0.0);
    h.world.bcast(me, 2, data.data(), data.size() * 8);
    for (double d : data) EXPECT_DOUBLE_EQ(d, 1.5);
    // reduce to root 1
    std::vector<double> v(4, static_cast<double>(me));
    h.world.reduce_sum(me, 1, v.data(), v.size());
    if (me == 1)
      for (double d : v) EXPECT_DOUBLE_EQ(d, 28.0);  // 0+..+7
    // allreduce
    std::vector<double> w(2, 1.0);
    h.world.allreduce_sum(me, w.data(), w.size());
    for (double d : w) EXPECT_DOUBLE_EQ(d, 8.0);
    // allgather
    double mine = me * 2.0;
    std::vector<double> all(8);
    h.world.allgather(me, &mine, all.data(), sizeof(double));
    for (int r = 0; r < 8; ++r) EXPECT_DOUBLE_EQ(all[r], r * 2.0);
  });
}

// ---------------------------------------------------------------------------
// PGAS
// ---------------------------------------------------------------------------

ClusterConfig pgas_cfg(int nodes, int tpn) {
  ClusterConfig c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = static_cast<std::size_t>(nodes) * 32 * kPageSize;
  return c;
}

TEST(Pgas, GetPutRoundTripAndAffinity) {
  Cluster cl(pgas_cfg(4, 1));
  argopgas::PgasArray<double> arr(cl, 8192);  // 64 KiB spans all homes
  cl.run([&](Thread& t) {
    // Each thread writes the slice with its node's affinity.
    for (std::size_t i = 0; i < arr.size(); ++i)
      if (arr.is_local(t, i)) arr.put(t, i, static_cast<double>(i) * 0.5);
    argopgas::pgas_barrier(t);
    // Everyone reads a sample of everything (remote = fine-grained RDMA).
    for (std::size_t i = t.gid(); i < arr.size(); i += 37)
      EXPECT_DOUBLE_EQ(arr.get(t, i), static_cast<double>(i) * 0.5);
  });
  EXPECT_GT(cl.net_stats().rdma_reads, 0u);
}

TEST(Pgas, BulkTransfersCrossHomes) {
  Cluster cl(pgas_cfg(4, 1));
  argopgas::PgasArray<std::uint32_t> arr(cl, 8192);
  cl.run([&](Thread& t) {
    if (t.node() == 0) {
      std::vector<std::uint32_t> src(8192);
      std::iota(src.begin(), src.end(), 7u);
      arr.put_bulk(t, 0, src.size(), src.data());
    }
    argopgas::pgas_barrier(t);
    if (t.node() == 3) {
      std::vector<std::uint32_t> dst(8192);
      arr.get_bulk(t, 0, dst.size(), dst.data());
      for (std::size_t i = 0; i < dst.size(); ++i)
        ASSERT_EQ(dst[i], i + 7u);
    }
  });
}

TEST(Pgas, RemoteAccessPaysFullLatencyPerElement) {
  auto cfg = pgas_cfg(2, 1);
  cfg.global_mem_bytes = 16 * kPageSize;  // array must span both homes
  Cluster cl(cfg);
  argopgas::PgasArray<double> arr(cl, 8192);
  Time per_local = 0, per_remote = 0;
  cl.run([&](Thread& t) {
    if (t.node() != 0) return;
    std::size_t local_i = 0, remote_i = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (arr.is_local(t, i)) local_i = i;
      else remote_i = i;
    }
    Time t0 = argosim::now();
    for (int k = 0; k < 10; ++k) (void)arr.get(t, local_i);
    per_local = (argosim::now() - t0) / 10;
    t0 = argosim::now();
    for (int k = 0; k < 10; ++k) (void)arr.get(t, remote_i);
    per_remote = (argosim::now() - t0) / 10;
  });
  EXPECT_GE(per_remote, cl.config().net.rdma_latency);
  EXPECT_LT(per_local, 100u);
}

// ---------------------------------------------------------------------------
// Active (message-handler) DSM
// ---------------------------------------------------------------------------

ActiveDsm::Config active_cfg(int nodes, int tpn) {
  ActiveDsm::Config c;
  c.nodes = nodes;
  c.threads_per_node = tpn;
  c.global_mem_bytes = static_cast<std::size_t>(nodes) * 32 * kPageSize;
  return c;
}

TEST(ActiveDsm, ReadAfterRemoteWrite) {
  ActiveDsm dsm(active_cfg(2, 1));
  auto p = dsm.alloc<std::uint64_t>(1);
  dsm.run([&](ActiveThread& t) {
    if (t.node() == 0) t.store(p, std::uint64_t{4242});
    t.barrier();
    // MSI is coherent at all times: the read recalls the modified copy.
    EXPECT_EQ(t.load(p), 4242u);
  });
  const auto st = dsm.stats();
  EXPECT_GE(st.recalls, 1u);
  EXPECT_GT(st.handler_messages, 0u);
}

TEST(ActiveDsm, WriteInvalidatesSharers) {
  ActiveDsm dsm(active_cfg(4, 1));
  auto p = dsm.alloc<std::uint64_t>(1);
  dsm.run([&](ActiveThread& t) {
    (void)t.load(p);  // everyone becomes a sharer
    t.barrier();
    if (t.node() == 2) t.store(p, std::uint64_t{5});
    t.barrier();
    EXPECT_EQ(t.load(p), 5u);
  });
  EXPECT_GE(dsm.stats().invalidations, 2u);
}

TEST(ActiveDsm, MigratoryCounterIsCorrect) {
  // Critical-section-like ping-pong: every increment recalls the page from
  // the previous owner through the home — the migratory pattern §1 blames.
  ActiveDsm dsm(active_cfg(4, 2));
  auto p = dsm.alloc<std::uint64_t>(1);
  const int iters = 10;
  dsm.run([&](ActiveThread& t) {
    for (int k = 0; k < iters; ++k) {
      for (int turn = 0; turn < t.nthreads(); ++turn) {
        if (turn == t.gid()) t.store(p, t.load(p) + 1);
        t.barrier();
      }
    }
  });
  dsm.flush_all_host();
  EXPECT_EQ(*dsm.host_ptr(p), static_cast<std::uint64_t>(iters * 8));
}

TEST(ActiveDsm, FalseSharingPingPongsWholePage) {
  // Two nodes write disjoint halves of one page: unlike Argo's diffs, MSI
  // must bounce exclusive ownership back and forth.
  ActiveDsm dsm(active_cfg(2, 1));
  auto p = dsm.alloc<std::uint8_t>(kPageSize);
  dsm.run([&](ActiveThread& t) {
    for (int k = 0; k < 5; ++k) {
      const std::size_t off = t.node() == 0 ? 0 : kPageSize / 2;
      t.store(p + static_cast<std::ptrdiff_t>(off + k),
              static_cast<std::uint8_t>(k + 1));
      t.barrier();
    }
  });
  dsm.flush_all_host();
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(dsm.host_ptr(p)[k], k + 1);
    EXPECT_EQ(dsm.host_ptr(p)[kPageSize / 2 + k], k + 1);
  }
  // Ownership bounces at least once per round (the previous round's last
  // writer serves the other node's write-exclusive request).
  EXPECT_GE(dsm.stats().recalls, 4u);
}

TEST(ActiveDsm, HandlerDispatchCostIsCharged) {
  ActiveDsm dsm(active_cfg(2, 1));
  auto p = dsm.alloc<std::uint64_t>(1);
  dsm.run([&](ActiveThread& t) {
    if (t.node() == 1) (void)t.load(p);
  });
  const auto st = dsm.stats();
  EXPECT_GT(st.handler_busy, 0u);
  EXPECT_EQ(st.handler_busy,
            st.handler_messages * NetConfig{}.handler_dispatch);
}

}  // namespace
