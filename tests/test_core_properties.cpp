// Property-based tests for the Carina protocol: randomized data-race-free
// programs must observe exactly the values release/acquire ordering
// entitles them to, under every classification mode and cache geometry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "sim/random.hpp"

namespace argo {
namespace {

using argomem::kPageSize;
using argosim::Rng;

struct WriteOp {
  std::uint64_t page;
  std::uint32_t off;
  std::uint8_t val;
};

struct ReadOp {
  std::uint64_t page;
  std::uint32_t off;
  std::uint8_t expect;
};

// A generated DRF schedule: epochs separated by barriers. In each epoch a
// page is either written by (thread 0 of) exactly one node, or read by any
// set of threads — never both, so every execution is data-race-free.
struct Schedule {
  int nodes, tpn, epochs;
  std::uint64_t first_page, num_pages;
  // writes[epoch][node] / reads[epoch][node][tid]
  std::vector<std::vector<std::vector<WriteOp>>> writes;
  std::vector<std::vector<std::vector<std::vector<ReadOp>>>> reads;
  std::vector<std::uint8_t> final_image;  // expected page bytes at the end
};

Schedule generate(std::uint64_t seed, int nodes, int tpn, int epochs,
                  std::uint64_t first_page, std::uint64_t num_pages) {
  Rng rng(seed);
  Schedule s;
  s.nodes = nodes;
  s.tpn = tpn;
  s.epochs = epochs;
  s.first_page = first_page;
  s.num_pages = num_pages;
  s.writes.assign(epochs, {});
  s.reads.assign(epochs, {});
  std::vector<std::uint8_t> shadow(num_pages * kPageSize, 0);

  for (int e = 0; e < epochs; ++e) {
    s.writes[e].assign(nodes, {});
    s.reads[e].assign(nodes, {});
    for (int n = 0; n < nodes; ++n) s.reads[e][n].assign(tpn, {});

    // Assign each page a role for this epoch.
    std::vector<int> writer_of(num_pages, -1);
    for (std::uint64_t p = 0; p < num_pages; ++p) {
      const double roll = rng.next_double();
      if (roll < 0.35)
        writer_of[p] = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nodes)));
    }

    // Reads first (they see the *pre-epoch* shadow)...
    for (std::uint64_t p = 0; p < num_pages; ++p) {
      if (writer_of[p] != -1) continue;
      for (int n = 0; n < nodes; ++n) {
        if (!rng.next_bool(0.5)) continue;
        for (int t = 0; t < tpn; ++t) {
          const int count = static_cast<int>(rng.next_below(4));
          for (int k = 0; k < count; ++k) {
            const auto off = static_cast<std::uint32_t>(rng.next_below(kPageSize));
            s.reads[e][n][t].push_back(
                ReadOp{p, off, shadow[p * kPageSize + off]});
          }
        }
      }
    }
    // ...then this epoch's writes update the shadow.
    for (std::uint64_t p = 0; p < num_pages; ++p) {
      if (writer_of[p] == -1) continue;
      const int n = writer_of[p];
      const int count = 1 + static_cast<int>(rng.next_below(24));
      for (int k = 0; k < count; ++k) {
        const auto off = static_cast<std::uint32_t>(rng.next_below(kPageSize));
        const auto val = static_cast<std::uint8_t>(1 + rng.next_below(255));
        s.writes[e][n].push_back(WriteOp{p, off, val});
        shadow[p * kPageSize + off] = val;
      }
    }
  }
  s.final_image = std::move(shadow);
  return s;
}

struct PropParam {
  Mode mode;
  std::size_t pages_per_line;
  std::size_t cache_lines;
  std::size_t write_buffer;
  std::uint64_t seed;
  int pipeline = 1;  ///< posted-verb send-queue depth (1 = blocking verbs)
};

std::string param_name(const ::testing::TestParamInfo<PropParam>& info) {
  const auto& p = info.param;
  std::string m;
  switch (p.mode) {
    case Mode::S: m = "S"; break;
    case Mode::PSNaive: m = "PSNaive"; break;
    case Mode::PS: m = "PS"; break;
    case Mode::PS3: m = "PS3"; break;
  }
  return m + "_ppl" + std::to_string(p.pages_per_line) + "_lines" +
         std::to_string(p.cache_lines) + "_wb" + std::to_string(p.write_buffer) +
         "_seed" + std::to_string(p.seed) + "_p" + std::to_string(p.pipeline);
}

class RandomDrfPrograms : public ::testing::TestWithParam<PropParam> {};

TEST_P(RandomDrfPrograms, ObserveExactlyTheEntitledValues) {
  const PropParam param = GetParam();
  const int nodes = 4, tpn = 2, epochs = 10;
  const std::uint64_t num_pages = 20;

  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.threads_per_node = tpn;
  cfg.global_mem_bytes = static_cast<std::size_t>(nodes) * 16 * kPageSize;
  cfg.cache.classification = param.mode;
  cfg.cache.pages_per_line = param.pages_per_line;
  cfg.cache.cache_lines = param.cache_lines;
  cfg.cache.write_buffer_pages = param.write_buffer;
  cfg.net.pipeline = param.pipeline;
  Cluster cl(cfg);

  // Pages 8..27 span all four home nodes (16 pages per node).
  const std::uint64_t first_page = 8;
  const Schedule s =
      generate(param.seed, nodes, tpn, epochs, first_page, num_pages);

  std::vector<std::string> failures;
  cl.run([&](Thread& t) {
    for (int e = 0; e < s.epochs; ++e) {
      if (t.tid() == 0)
        for (const WriteOp& w : s.writes[e][t.node()]) {
          auto addr = gptr<std::uint8_t>((first_page + w.page) * kPageSize + w.off);
          t.store(addr, w.val);
          const std::uint8_t got = t.load(addr);
          if (got != w.val)
            failures.push_back("read-own-write epoch=" + std::to_string(e) +
                               " node=" + std::to_string(t.node()) +
                               " page=" + std::to_string(w.page) + " off=" +
                               std::to_string(w.off) + " expect=" +
                               std::to_string(w.val) + " got=" +
                               std::to_string(got));
        }
      for (const ReadOp& r : s.reads[e][t.node()][t.tid()]) {
        auto addr = gptr<std::uint8_t>((first_page + r.page) * kPageSize + r.off);
        const std::uint8_t got = t.load(addr);
        if (got != r.expect)
          failures.push_back("read epoch=" + std::to_string(e) + " node=" +
                             std::to_string(t.node()) + " tid=" +
                             std::to_string(t.tid()) + " page=" +
                             std::to_string(r.page) + " off=" +
                             std::to_string(r.off) + " expect=" +
                             std::to_string(r.expect) + " got=" +
                             std::to_string(got));
      }
      t.barrier();
    }
  });
  EXPECT_TRUE(failures.empty()) << failures.size() << " bad observations; first: "
                                << failures.front();

  // After the final barrier the home copies must equal the shadow image —
  // except under naive P/S, where still-private dirty pages legitimately
  // live only in their owner's checkpoint.
  if (param.mode != Mode::PSNaive) {
    const std::uint8_t* base =
        cl.host_ptr(gptr<std::uint8_t>(first_page * kPageSize));
    std::uint64_t mismatches = 0;
    for (std::uint64_t i = 0; i < num_pages * kPageSize; ++i)
      mismatches += (base[i] != s.final_image[i]) ? 1 : 0;
    EXPECT_EQ(mismatches, 0u);
    // And nothing may remain dirty.
    for (int n = 0; n < nodes; ++n)
      EXPECT_EQ(cl.node_cache(n).dirty_pages(), 0u) << "node " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Carina, RandomDrfPrograms,
    ::testing::Values(
        // Every mode under a roomy geometry.
        PropParam{Mode::S, 1, 64, 64, 1},
        PropParam{Mode::PSNaive, 1, 64, 64, 1},
        PropParam{Mode::PS, 1, 64, 64, 1},
        PropParam{Mode::PS3, 1, 64, 64, 1},
        // Prefetching lines.
        PropParam{Mode::S, 4, 16, 64, 2},
        PropParam{Mode::PSNaive, 4, 16, 64, 2},
        PropParam{Mode::PS, 4, 16, 64, 2},
        PropParam{Mode::PS3, 4, 16, 64, 2},
        // Conflict-heavy tiny cache.
        PropParam{Mode::S, 1, 4, 64, 3},
        PropParam{Mode::PSNaive, 1, 4, 64, 3},
        PropParam{Mode::PS, 1, 4, 64, 3},
        PropParam{Mode::PS3, 1, 4, 64, 3},
        // Tiny write buffer (constant draining).
        PropParam{Mode::S, 1, 64, 2, 4},
        PropParam{Mode::PSNaive, 1, 64, 2, 4},
        PropParam{Mode::PS, 1, 64, 2, 4},
        PropParam{Mode::PS3, 1, 64, 2, 4},
        // Everything at once, multiple seeds.
        PropParam{Mode::PS3, 4, 8, 4, 5},
        PropParam{Mode::PS3, 4, 8, 4, 6},
        PropParam{Mode::PSNaive, 4, 8, 4, 7},
        PropParam{Mode::S, 2, 8, 2, 8}),
    param_name);

INSTANTIATE_TEST_SUITE_P(
    CarinaPipelined, RandomDrfPrograms,
    ::testing::Values(
        // Every mode with the posted verbs engaged.
        PropParam{Mode::S, 1, 64, 64, 1, 4},
        PropParam{Mode::PSNaive, 1, 64, 64, 1, 4},
        PropParam{Mode::PS, 1, 64, 64, 1, 4},
        PropParam{Mode::PS3, 1, 64, 64, 1, 4},
        // Prefetching lines: fills post one read per home segment.
        PropParam{Mode::S, 4, 16, 64, 2, 4},
        PropParam{Mode::PSNaive, 4, 16, 64, 2, 4},
        PropParam{Mode::PS, 4, 16, 64, 2, 4},
        PropParam{Mode::PS3, 4, 16, 64, 2, 4},
        // Tiny write buffer: drains race the posted queue hard.
        PropParam{Mode::S, 1, 64, 2, 4, 4},
        PropParam{Mode::PSNaive, 1, 64, 2, 4, 4},
        PropParam{Mode::PS, 1, 64, 2, 4, 4},
        PropParam{Mode::PS3, 1, 64, 2, 4, 4},
        // Deep queue, conflict-heavy geometry.
        PropParam{Mode::PS3, 4, 8, 4, 5, 16},
        PropParam{Mode::PS, 4, 8, 4, 6, 16},
        PropParam{Mode::PSNaive, 4, 8, 4, 7, 16},
        PropParam{Mode::S, 2, 8, 2, 8, 16}),
    param_name);

}  // namespace
}  // namespace argo
