// Adaptive runtime tuning (core/adapt.*): the three policies must be
// deterministic (bit-identical across reruns, engine worker counts, and
// chaos/crash schedules), must vanish completely in reference mode
// (ARGO_NO_ADAPT / all policies off == the seed's fixed knobs), and each
// policy's controller must honor its directed semantics: the write-buffer
// hill-climber's priming/judgment/revert/bounds, the diff-density streak
// and probe cadence, and the stride table's confidence gate and
// misprediction accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "apps/lu.hpp"
#include "core/adapt.hpp"
#include "core/carina.hpp"
#include "core/cluster.hpp"
#include "net/faults.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "sim/par.hpp"
#include "sim/slowpath.hpp"

namespace {

using argocore::AdaptConfig;
using argocore::AdaptEngine;
using argocore::AdaptStats;
using argocore::StrideTable;

constexpr std::size_t kWordsPerPage = argomem::kPageSize / sizeof(std::uint64_t);

// Restores the reference-mode toggle on scope exit so a failing test
// cannot leak ARGO_NO_ADAPT semantics into later tests.
struct AdaptGuard {
  bool prev = argocore::adapt_forced_off();
  ~AdaptGuard() { argocore::set_adapt_forced_off(prev); }
};

// Restores the process-wide engine selection (ARGO_THREADS/ARGO_SEQ_ENGINE).
struct EngineGuard {
  int prev_threads = argosim::engine_threads();
  bool prev_seq = argosim::seq_engine();
  ~EngineGuard() {
    argosim::set_engine_threads(prev_threads);
    argosim::set_seq_engine(prev_seq);
  }
};

// The curated comparable footprint of one node's CoherenceStats (same
// fields tests/test_hostperf.cpp compares) plus every adapt decision
// counter — policy decisions are part of the observable behaviour.
std::vector<std::uint64_t> stat_fields(const argocore::CoherenceStats& s) {
  return {s.read_hits,      s.read_misses,
          s.write_hits,     s.write_misses,
          s.home_accesses,  s.line_fetches,
          s.pages_fetched,  s.bytes_fetched,
          s.writebacks,     s.writeback_bytes,
          s.diffs_built,    s.full_page_writebacks,
          s.si_fences,      s.sd_fences,
          s.si_invalidations, s.evictions,
          s.dir_ops,        s.transitions_caused,
          s.checkpoints,    s.checkpoint_bytes,
          s.heals,          s.sd_fence_ns.samples,
          s.si_fence_ns.samples};
}

std::vector<std::uint64_t> adapt_fields(const AdaptStats& a) {
  return {a.wb_grows,          a.wb_shrinks,       a.wb_reverts,
          a.full_page_selected, a.density_probes,   a.prefetch_issued,
          a.prefetched_pages,  a.prefetch_useful,  a.prefetch_suppressed,
          a.stride_resets};
}

struct RunObs {
  std::vector<std::uint8_t> trace;
  argosim::Time elapsed = 0;
  std::vector<std::vector<std::uint64_t>> stats;
  std::uint64_t mem_hash = 0;

  bool operator==(const RunObs& o) const {
    return trace == o.trace && elapsed == o.elapsed && stats == o.stats &&
           mem_hash == o.mem_hash;
  }
};

void apply_mask(argo::ClusterConfig& c, int mask) {
  c.adapt.write_buffer = (mask & 1) != 0;
  c.adapt.diff_granularity = (mask & 2) != 0;
  c.adapt.stride_prefetch = (mask & 4) != 0;
}

// The same DRF torture workload the host-path suite uses — alternating
// owner-write / read-anywhere phases on a cache small enough to force
// evictions and a write buffer small enough to force overflow drains —
// with the adaptive policy mask as a parameter.
RunObs run_random_workload(unsigned seed, bool chaos, int adapt_mask) {
  argo::ClusterConfig c;
  c.nodes = 2;
  c.threads_per_node = 2;
  c.global_mem_bytes = 128 * argomem::kPageSize;
  c.cache.cache_lines = 8;
  c.cache.pages_per_line = 2;
  c.cache.write_buffer_pages = 4;
  c.trace.enabled = true;
  apply_mask(c, adapt_mask);
  if (chaos) {
    c.faults.enabled = true;
    c.faults.seed = 4321;
    c.faults.rdma_fail_prob = 0.02;
    c.faults.jitter_prob = 0.1;
    c.faults.jitter_max = 500;
  }
  argo::Cluster cl(c);
  constexpr std::size_t kPages = 96;
  auto arr = cl.alloc<std::uint64_t>(kPages * kWordsPerPage);
  cl.reset_classification();
  RunObs obs;
  obs.elapsed = cl.run([&](argo::Thread& t) {
    std::mt19937 rng(seed * 7919u + static_cast<unsigned>(t.gid()));
    const std::size_t slice = kPages / static_cast<std::size_t>(t.nthreads());
    const std::size_t own_lo = slice * static_cast<std::size_t>(t.gid());
    for (int round = 0; round < 6; ++round) {
      for (int k = 0; k < 40; ++k) {  // writes confined to the own slice
        const std::size_t pg = own_lo + rng() % slice;
        const std::size_t idx = pg * kWordsPerPage + rng() % kWordsPerPage;
        t.store(arr + static_cast<std::ptrdiff_t>(idx),
                static_cast<std::uint64_t>(rng()));
      }
      t.barrier();
      std::uint64_t sink = 0;  // reads roam everywhere (no writes in flight)
      for (int k = 0; k < 80; ++k) {
        const std::size_t pg = rng() % kPages;
        const std::size_t idx = pg * kWordsPerPage + rng() % kWordsPerPage;
        sink ^= t.load(arr + static_cast<std::ptrdiff_t>(idx));
      }
      (void)sink;
      t.barrier();
    }
  });
  obs.trace = argoobs::encode_binary(cl.tracer().snapshot(),
                                     cl.tracer().dropped());
  for (int n = 0; n < c.nodes; ++n) {
    obs.stats.push_back(stat_fields(cl.node_cache(n).stats()));
    obs.stats.push_back(adapt_fields(cl.node_cache(n).adapt().stats()));
  }
  const std::byte* bytes = cl.gmem().home_ptr(0);
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a over home memory
  for (std::size_t i = 0; i < cl.gmem().size(); ++i) {
    h ^= static_cast<std::uint8_t>(bytes[i]);
    h *= 1099511628211ull;
  }
  obs.mem_hash = h;
  return obs;
}

// ---------------------------------------------------------------------------
// Determinism: reruns, worker counts, chaos, crash schedules

TEST(AdaptDeterminism, BitIdenticalAcrossRerunsAndWorkerCounts) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  for (const unsigned seed : {11u, 22u, 33u}) {
    for (const bool chaos : {false, true}) {
      auto run_at = [&](int workers) {
        EngineGuard eg;
        argosim::set_seq_engine(false);
        argosim::set_engine_threads(workers);
        return run_random_workload(seed, chaos, /*adapt_mask=*/7);
      };
      const RunObs ref = run_at(1);
      ASSERT_GT(ref.trace.size(), 32u) << "seed " << seed;
      EXPECT_EQ(ref, run_at(1)) << "rerun, seed " << seed << " chaos " << chaos;
      EXPECT_EQ(ref, run_at(2)) << "2 workers, seed " << seed;
      EXPECT_EQ(ref, run_at(8)) << "8 workers, seed " << seed;
    }
  }
}

TEST(AdaptDeterminism, CrashRecoveryRunsReplayBitIdentically) {
  // A mid-run crash-stop failure with lease recovery, transient RDMA chaos
  // on top, and every adaptive policy active: (elapsed, checksum) must
  // replay bit-identically per seed, sequential and at 8 workers.
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    auto run_at = [&](int workers) {
      EngineGuard eg;
      argosim::set_seq_engine(false);
      argosim::set_engine_threads(workers);
      argo::ClusterConfig cfg;
      cfg.nodes = 4;
      cfg.threads_per_node = 2;
      cfg.global_mem_bytes = 2048 * argomem::kPageSize;
      cfg.cache.cache_lines = 8192;
      cfg.cache.write_buffer_pages = 1024;
      cfg.faults.enabled = true;
      cfg.faults.seed = seed;
      cfg.faults.rdma_fail_prob = 0.01;
      cfg.membership.enabled = true;
      cfg.faults.crashes.push_back(argonet::CrashEvent{.node = 3, .at = 400'000});
      apply_mask(cfg, 7);
      argo::Cluster cl(cfg);
      argoapps::LuParams p;
      p.n = 128;
      p.block = 32;
      const auto r = argoapps::lu_run_argo(cl, p);
      EXPECT_EQ(cl.membership().stats().deaths, 1u);
      return std::make_pair(r.elapsed, r.checksum);
    };
    const auto ref = run_at(1);
    EXPECT_EQ(ref, run_at(1)) << "seed " << seed;
    EXPECT_EQ(ref, run_at(8)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Reference mode: policies off == the seed, bit for bit

TEST(AdaptReference, ForcedOffReproducesSeedForEveryPolicyMask) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  const RunObs seed_run = run_random_workload(11, false, /*adapt_mask=*/0);
  ASSERT_GT(seed_run.trace.size(), 32u);
  // ARGO_NO_ADAPT forces every mask — each policy alone and all together —
  // back to the seed's traces, virtual times, stats, and memory image.
  argocore::set_adapt_forced_off(true);
  for (const int mask : {1, 2, 4, 7}) {
    EXPECT_EQ(seed_run, run_random_workload(11, false, mask))
        << "forced-off mask " << mask;
  }
  argocore::set_adapt_forced_off(false);
}

TEST(AdaptReference, InertPolicyPreservesSeedKnobVerbatim) {
  // With the policy off the configured knob passes through unclamped:
  // the seed's behaviour must not change just because adapt.hpp exists.
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptConfig cfg;  // write_buffer = false
  AdaptEngine eng(cfg, /*base_wb_pages=*/3, /*protocol_supported=*/true);
  EXPECT_EQ(eng.wb_capacity(), 3u);  // below wb_min_pages, kept verbatim
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(1000, 100, 0), 0u);
  EXPECT_EQ(eng.stats().wb_shrinks, 0u);
}

TEST(AdaptReference, ForcedOffMakesActiveEngineInert) {
  AdaptGuard guard;
  AdaptConfig cfg;
  cfg.write_buffer = true;
  AdaptEngine eng(cfg, 64, true);
  argocore::set_adapt_forced_off(true);
  EXPECT_FALSE(eng.wb_active());
  eng.note_wb_admit(1);
  eng.note_drain_stall(5000);
  EXPECT_EQ(eng.sample_fence(100'000, 10'000, 0), 0u);
  EXPECT_EQ(eng.wb_capacity(), 64u);
  EXPECT_EQ(eng.stats().wb_shrinks + eng.stats().wb_grows, 0u);
}

// ---------------------------------------------------------------------------
// Directed policy (a): the write-buffer hill-climber

AdaptEngine wb_engine(std::size_t base, AdaptConfig cfg = {}) {
  cfg.write_buffer = true;
  return AdaptEngine(cfg, base, /*protocol_supported=*/true);
}

TEST(AdaptWriteBuffer, FirstActingFencePrimesWithoutMoving) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(64);
  // Fences before any admission carry no signal at all.
  EXPECT_EQ(eng.sample_fence(50'000, 10'000, 0), 0u);
  // The first admitting fence only starts the phase clock.
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 10'000, 0), 0u);
  EXPECT_EQ(eng.wb_capacity(), 64u);
  EXPECT_EQ(eng.stats().wb_shrinks, 0u);
}

TEST(AdaptWriteBuffer, GrosslyOversizedBufferJumpsToFourTimesPeak) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(1024);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 10'000, 0), 0u);  // prime
  // One real phase with peak occupancy 2 on a 1024-page buffer: the
  // climber skips the halving walk and jumps to pow2(4 * peak) = 8.
  eng.note_wb_admit(2);
  EXPECT_EQ(eng.sample_fence(200'000, 10'000, 0), 8u);
  EXPECT_EQ(eng.wb_capacity(), 8u);
  EXPECT_EQ(eng.stats().wb_shrinks, 1u);
}

TEST(AdaptWriteBuffer, SlowerStallingPhaseRevertsTheMoveAndHolds) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(1024);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 10'000, 0), 0u);
  eng.note_wb_admit(2);
  EXPECT_EQ(eng.sample_fence(200'000, 10'000, 0), 8u);  // the jump
  // The post-move phase runs much slower with real overflow stall: the
  // jump is judged harmful and the old capacity restored.
  eng.note_drain_stall(50'000);
  eng.note_wb_admit(8);
  EXPECT_EQ(eng.sample_fence(400'000, 10'000, 0), 1024u);
  EXPECT_EQ(eng.wb_capacity(), 1024u);
  EXPECT_EQ(eng.stats().wb_reverts, 1u);
  // The revert starts a cooldown: the next acting fence must not move.
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(500'000, 10'000, 0), 0u);
  EXPECT_EQ(eng.wb_capacity(), 1024u);
}

TEST(AdaptWriteBuffer, GrowNeedsSustainedStallPressure) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(4);  // at the floor: shrinking impossible
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 1'000, 0), 0u);  // prime
  // Heavy per-admission stall raises the pressure EWMA past the
  // threshold, but a grow also needs the two-phase baseline.
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(200'000, 1'000, 0), 0u);
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(300'000, 1'000, 0), 8u);  // the grow probe
  EXPECT_EQ(eng.stats().wb_grows, 1u);
}

TEST(AdaptWriteBuffer, GrowWithoutStallReliefIsReverted) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(4);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 1'000, 0), 0u);
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(200'000, 1'000, 0), 0u);
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(300'000, 1'000, 0), 8u);
  // Post-grow phase: same length, stall undiminished — the capacity was
  // not what throttled the phase, so the grow must not be kept.
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(400'000, 1'000, 0), 4u);
  EXPECT_EQ(eng.wb_capacity(), 4u);
  EXPECT_EQ(eng.stats().wb_reverts, 1u);
}

TEST(AdaptWriteBuffer, GrowKeptWhenStallVanishesAndPhaseImproves) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(4);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(100'000, 1'000, 0), 0u);
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(200'000, 1'000, 0), 0u);
  eng.note_drain_stall(8'000);
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(300'000, 1'000, 0), 8u);
  // Post-grow phase: clearly faster AND stall-free — kept.
  eng.note_wb_admit(1);
  EXPECT_EQ(eng.sample_fence(380'000, 1'000, 0), 0u);
  EXPECT_EQ(eng.wb_capacity(), 8u);
  EXPECT_EQ(eng.stats().wb_reverts, 0u);
}

TEST(AdaptWriteBuffer, CapacityRespectsFloorLiveEntriesAndCeiling) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptConfig cfg;
  cfg.wb_max_pages = 64;
  AdaptEngine eng = wb_engine(64, cfg);
  // Shrink as hard as possible while 5 pages stay queued (SI fences do
  // not drain): capacity must never go below pow2(live) = 8, and with
  // heavy stall pressure grows must never exceed the 64-page ceiling.
  std::uint64_t t = 0;
  for (int phase = 0; phase < 40; ++phase) {
    eng.note_drain_stall(phase >= 20 ? 8'000 : 0);
    eng.note_wb_admit(5);
    t += 100'000;
    eng.sample_fence(t, 50'000, /*live=*/5);
    EXPECT_GE(eng.wb_capacity(), 8u) << "phase " << phase;
    EXPECT_LE(eng.wb_capacity(), 64u) << "phase " << phase;
  }
}

TEST(AdaptWriteBuffer, ResetRuntimeRestoresBaseCapacity) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = wb_engine(1024);
  eng.note_wb_admit(1);
  eng.sample_fence(100'000, 10'000, 0);
  eng.note_wb_admit(2);
  eng.sample_fence(200'000, 10'000, 0);
  ASSERT_NE(eng.wb_capacity(), 1024u);
  eng.reset_runtime();
  EXPECT_EQ(eng.wb_capacity(), 1024u);
  EXPECT_EQ(eng.wb_capacity_history().size(), 1u);
}

// ---------------------------------------------------------------------------
// Directed policy (b): diff-density classification

AdaptEngine diff_engine() {
  AdaptConfig cfg;
  cfg.diff_granularity = true;
  return AdaptEngine(cfg, 512, /*protocol_supported=*/true);
}

TEST(AdaptDiffDensity, FullPageNeedsBothDenseEwmaAndStreak) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = diff_engine();
  bool flipped = false;
  // Never-diffed pages stay on the diff path.
  EXPECT_FALSE(eng.prefer_full_page(7, flipped));
  // Two dense diffs: EWMA is dense but the streak (3) is not yet met.
  eng.note_diff(7, argomem::kPageSize);
  eng.note_diff(7, argomem::kPageSize);
  EXPECT_FALSE(eng.prefer_full_page(7, flipped));
  EXPECT_FALSE(flipped);
  // The third consecutive dense diff crosses the streak threshold.
  eng.note_diff(7, argomem::kPageSize);
  EXPECT_TRUE(eng.prefer_full_page(7, flipped));
  EXPECT_TRUE(flipped);  // classification changed diff -> full page
  EXPECT_EQ(eng.stats().full_page_selected, 1u);
  // One sparse diff breaks the streak and knocks the EWMA down: back to
  // run-coalesced diffs, reported as a flip again.
  eng.note_diff(7, 64);
  EXPECT_FALSE(eng.prefer_full_page(7, flipped));
  EXPECT_TRUE(flipped);
}

TEST(AdaptDiffDensity, AlternatingDenseCleanPagesKeepDiffing) {
  // A page that alternates dense and clean writebacks must never flip to
  // full-page mode: a full-page write of an unchanged page ships 4 KiB
  // for nothing.
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = diff_engine();
  bool flipped = false;
  for (int round = 0; round < 12; ++round) {
    eng.note_diff(3, (round % 2 == 0) ? argomem::kPageSize : 0);
    EXPECT_FALSE(eng.prefer_full_page(3, flipped)) << "round " << round;
  }
  EXPECT_EQ(eng.stats().full_page_selected, 0u);
}

TEST(AdaptDiffDensity, PeriodicProbeRediffsDensePages) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  AdaptEngine eng = diff_engine();  // density_probe_interval = 8
  bool flipped = false;
  for (int i = 0; i < 3; ++i) eng.note_diff(9, argomem::kPageSize);
  // 16 full-page-eligible consultations: every 8th is forced back onto
  // the diff path so the EWMA keeps observing real wire bytes.
  unsigned full = 0, probes = 0;
  for (int i = 0; i < 16; ++i) {
    if (eng.prefer_full_page(9, flipped))
      ++full;
    else
      ++probes;
  }
  EXPECT_EQ(full, 14u);
  EXPECT_EQ(probes, 2u);
  EXPECT_EQ(eng.stats().density_probes, 2u);
  EXPECT_EQ(eng.stats().full_page_selected, 14u);
}

// ---------------------------------------------------------------------------
// Directed policy (c): the stride table

TEST(AdaptStride, ConfidenceGateBlocksShortStreams) {
  AdaptConfig cfg;  // stride_confidence = 6, prefetch_degree = 2
  AdaptStats stats;
  StrideTable st;
  // Five same-stride misses after adoption stay below the confidence bar
  // (a short array slice must never trigger predictions)...
  for (std::uint64_t pg = 100; pg < 106; ++pg)
    EXPECT_EQ(st.note_miss(pg, cfg, stats).degree, 0) << "page " << pg;
  // ...the sixth confirmation clears it and predictions fire.
  const auto pred = st.note_miss(106, cfg, stats);
  EXPECT_EQ(pred.degree, 2);
  EXPECT_EQ(pred.stride, 1);
  EXPECT_EQ(stats.stride_resets, 0u);
}

TEST(AdaptStride, JumpsWithinDegreePlusOneContinueTheStream) {
  AdaptConfig cfg;
  AdaptStats stats;
  StrideTable st;
  for (std::uint64_t pg = 100; pg < 107; ++pg) st.note_miss(pg, cfg, stats);
  // Prefetched pages absorb intermediate misses, so the next demand miss
  // lands degree+1 strides ahead: still the same stream.
  const auto pred = st.note_miss(109, cfg, stats);
  EXPECT_EQ(pred.degree, 2);
  EXPECT_EQ(pred.stride, 1);
}

TEST(AdaptStride, EvictingAConfidentStreamCountsAsMisprediction) {
  AdaptConfig cfg;
  AdaptStats stats;
  StrideTable st;
  for (std::uint64_t pg = 100; pg < 107; ++pg)
    st.note_miss(pg, cfg, stats);  // entry 0: confident stride-1 stream
  st.note_miss(1000, cfg, stats);  // entry 1: fresh candidate
  st.note_miss(2000, cfg, stats);  // entry 1 adopts stride 1000
  EXPECT_EQ(stats.stride_resets, 0u);
  // A third unrelated page matches neither entry; the LRU victim is the
  // confident stream — that eviction is the misprediction signal.
  st.note_miss(2500, cfg, stats);
  EXPECT_EQ(stats.stride_resets, 1u);
}

TEST(AdaptStride, RepeatMissesCarryNoInformation) {
  AdaptConfig cfg;
  AdaptStats stats;
  StrideTable st;
  for (std::uint64_t pg = 100; pg < 107; ++pg) st.note_miss(pg, cfg, stats);
  // The same page missing again (e.g. a capacity re-fetch) neither
  // advances nor resets the stream.
  EXPECT_EQ(st.note_miss(106, cfg, stats).degree, 0);
  EXPECT_EQ(st.note_miss(107, cfg, stats).degree, 2);
}

// ---------------------------------------------------------------------------
// End-to-end: every policy acts on a workload shaped for it, and the
// memory image matches the fixed-knob run exactly (policies move virtual
// time, never data).

TEST(AdaptCluster, PoliciesActOnAStreamingWorkloadWithoutChangingMemory) {
  AdaptGuard guard;
  argocore::set_adapt_forced_off(false);
  auto run_once = [&](int mask) {
    argo::ClusterConfig c;
    c.nodes = 2;
    c.threads_per_node = 1;
    c.global_mem_bytes = 256 * argomem::kPageSize;
    c.cache.write_buffer_pages = 32;
    c.trace.enabled = true;
    apply_mask(c, mask);
    argo::Cluster cl(c);
    constexpr std::size_t kPages = 256, kQuarter = 64;
    auto arr = cl.alloc<std::uint64_t>(kPages * kWordsPerPage);
    cl.reset_classification();
    cl.run([&](argo::Thread& t) {
      // Each node streams full-page writes over a quarter homed on the
      // OTHER node (64 remote dirty pages vs a 32-page buffer: overflow
      // drains plus dense sole-writer diffs), then — after the barrier's
      // SI fence dropped its cached copies — streams reads back over the
      // same quarter: a long stride-1 remote miss stream.
      const std::size_t lo = t.node() == 0 ? 128 : 0;
      for (int round = 0; round < 5; ++round) {
        for (std::size_t p = 0; p < kQuarter; ++p)
          for (std::size_t w = 0; w < kWordsPerPage; ++w)
            t.store(arr + static_cast<std::ptrdiff_t>(
                              (lo + p) * kWordsPerPage + w),
                    static_cast<std::uint64_t>(round * kPages + p));
        t.barrier();
        std::uint64_t sum = 0;
        for (std::size_t p = 0; p < kQuarter; ++p)
          sum += t.load(arr + static_cast<std::ptrdiff_t>(
                                  (lo + p) * kWordsPerPage));
        EXPECT_EQ(sum, [&] {
          std::uint64_t s = 0;
          for (std::size_t p = 0; p < kQuarter; ++p)
            s += static_cast<std::uint64_t>(round * kPages + p);
          return s;
        }());
        t.barrier();
      }
    });
    AdaptStats total;
    for (int n = 0; n < c.nodes; ++n) total += cl.node_cache(n).adapt().stats();
    std::uint64_t kinds[3] = {0, 0, 0};
    for (const auto& e : cl.tracer().snapshot()) {
      if (e.kind == static_cast<std::uint8_t>(argoobs::Ev::AdaptWbResize))
        ++kinds[0];
      if (e.kind == static_cast<std::uint8_t>(argoobs::Ev::AdaptDiffMode))
        ++kinds[1];
      if (e.kind == static_cast<std::uint8_t>(argoobs::Ev::AdaptPrefetch))
        ++kinds[2];
    }
    const std::byte* bytes = cl.gmem().home_ptr(0);
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < cl.gmem().size(); ++i) {
      h ^= static_cast<std::uint8_t>(bytes[i]);
      h *= 1099511628211ull;
    }
    return std::make_tuple(total, kinds[0], kinds[1], kinds[2], h);
  };
  const auto [stats, wb_ev, diff_ev, pf_ev, hash] = run_once(7);
  // Every policy made at least one decision and traced it.
  EXPECT_GT(stats.wb_grows + stats.wb_shrinks + stats.wb_reverts, 0u);
  EXPECT_GT(stats.full_page_selected, 0u);
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_useful, 0u);
  EXPECT_GT(wb_ev, 0u);
  EXPECT_GT(diff_ev, 0u);
  EXPECT_GT(pf_ev, 0u);
  // Adaptation reshapes timing, never data: the final memory image is the
  // fixed-knob run's, bit for bit.
  const auto [stats0, w0, d0, p0, hash0] = run_once(0);
  EXPECT_EQ(adapt_fields(stats0), std::vector<std::uint64_t>(10, 0));
  EXPECT_EQ(w0 + d0 + p0, 0u);
  EXPECT_EQ(hash, hash0);
}

}  // namespace
