// Chaos suite: deterministic fault injection (src/net/faults), the
// retry/backoff machinery in the interconnect, and the coherence invariant
// checker (src/core/validate).
//
// The determinism contract under test: a given (program, config, seed)
// triple must produce bit-identical results, virtual times, and fault
// statistics on every run — chaos runs are as reproducible as clean runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/ep.hpp"
#include "apps/lu.hpp"
#include "apps/mm.hpp"
#include "core/cluster.hpp"
#include "core/membership.hpp"
#include "core/validate.hpp"
#include "net/faults.hpp"
#include "net/interconnect.hpp"
#include "sim/engine.hpp"
#include "sync/dsm_locks.hpp"

namespace {

using argo::Cluster;
using argo::ClusterConfig;
using argo::Mode;
using argocore::ProtocolValidator;
using argomem::kPageSize;
using argonet::FaultConfig;
using argonet::FaultInjector;
using argonet::Interconnect;
using argonet::NetConfig;
using argonet::NetworkError;
using argonet::NodeNetStats;
using argosim::Engine;
using argosim::Time;

// ---------------------------------------------------------------------------
// FaultInjector distributions and determinism (no simulation needed:
// plan_attempt takes the virtual time as a parameter)
// ---------------------------------------------------------------------------

TEST(FaultInjector, FailureRateMatchesProbability) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 42;
  cfg.rdma_fail_prob = 0.1;
  FaultInjector inj(cfg, 2);
  const int draws = 20000;
  int fails = 0;
  for (int i = 0; i < draws; ++i)
    fails += inj.plan_attempt(0, 1, static_cast<Time>(i)).fail ? 1 : 0;
  EXPECT_GT(fails, draws / 10 * 8 / 10);  // within ±20 % of expectation
  EXPECT_LT(fails, draws / 10 * 12 / 10);
}

TEST(FaultInjector, DropAndDuplicateRates) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 7;
  cfg.msg_drop_prob = 0.2;
  cfg.msg_dup_prob = 0.05;
  FaultInjector inj(cfg, 2);
  const int draws = 20000;
  int drops = 0, dups = 0;
  for (int i = 0; i < draws; ++i) {
    drops += inj.drop_message() ? 1 : 0;
    dups += inj.duplicate_message() ? 1 : 0;
  }
  EXPECT_GT(drops, 3200);
  EXPECT_LT(drops, 4800);
  EXPECT_GT(dups, 700);
  EXPECT_LT(dups, 1300);
}

TEST(FaultInjector, DeterministicPerSeedAndSensitiveToSeed) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 123;
  cfg.rdma_fail_prob = 0.3;
  cfg.jitter_prob = 0.5;
  cfg.jitter_max = 1000;

  FaultInjector a(cfg, 4), b(cfg, 4);
  FaultConfig other = cfg;
  other.seed = 124;
  FaultInjector c(other, 4);
  bool any_difference = false;
  for (int i = 0; i < 500; ++i) {
    const auto pa = a.plan_attempt(0, 1, static_cast<Time>(i));
    const auto pb = b.plan_attempt(0, 1, static_cast<Time>(i));
    const auto pc = c.plan_attempt(0, 1, static_cast<Time>(i));
    EXPECT_EQ(pa.fail, pb.fail);
    EXPECT_EQ(pa.extra_latency, pb.extra_latency);
    if (pa.fail != pc.fail || pa.extra_latency != pc.extra_latency)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);  // a different seed gives a different pattern
}

TEST(FaultInjector, ZeroRatesInjectNothing) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 9;
  FaultInjector inj(cfg, 2);
  for (int i = 0; i < 100; ++i) {
    const auto p = inj.plan_attempt(0, 1, static_cast<Time>(i));
    EXPECT_FALSE(p.fail);
    EXPECT_EQ(p.extra_latency, 0);
    EXPECT_EQ(p.latency_mult, 1.0);
    EXPECT_EQ(p.bw_frac, 1.0);
    EXPECT_FALSE(inj.drop_message());
    EXPECT_FALSE(inj.duplicate_message());
  }
  EXPECT_FALSE(inj.in_brownout(0, 1u << 30));
}

TEST(FaultInjector, BrownoutWindowsArePerNodeAndDegradeOps) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 5;
  cfg.brownout_mean_interval = 100000;
  cfg.brownout_mean_duration = 20000;
  FaultInjector inj(cfg, 2);

  // Scan virtual time; both nodes must enter windows, on distinct
  // schedules (per-node streams), and ops during a window are degraded.
  std::vector<bool> n0, n1;
  bool saw_degraded = false;
  for (Time t = 0; t < 2000000; t += 1000) {
    n0.push_back(inj.in_brownout(0, t));
    n1.push_back(inj.in_brownout(1, t));
    if (n0.back()) {
      const auto p = inj.plan_attempt(0, 1, t);
      EXPECT_EQ(p.latency_mult, cfg.brownout_latency_mult);
      EXPECT_EQ(p.bw_frac, cfg.brownout_bw_frac);
      saw_degraded = true;
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_GT(inj.brownouts_seen(0), 5u);
  EXPECT_GT(inj.brownouts_seen(1), 5u);
  EXPECT_NE(n0, n1);
}

TEST(FaultInjector, BackoffJitterStaysInSpan) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.seed = 3;
  FaultInjector inj(cfg, 1);
  EXPECT_EQ(inj.backoff_jitter(0), 0);
  for (int i = 0; i < 1000; ++i) {
    const Time j = inj.backoff_jitter(500);
    EXPECT_GE(j, 0);
    EXPECT_LE(j, 500);
  }
}

// ---------------------------------------------------------------------------
// Interconnect retry/backoff behaviour
// ---------------------------------------------------------------------------

NetConfig faulty_net() {
  NetConfig c;
  c.rdma_latency = 1000;
  c.msg_latency = 1000;
  c.nic_overhead = 100;
  c.net_bytes_per_ns = 2.0;
  c.mem_latency = 50;
  c.mem_bytes_per_ns = 10.0;
  return c;
}

TEST(InterconnectFaults, RetriesUntilSuccess) {
  Engine eng;
  Interconnect net(2, faulty_net());
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 17;
  fc.rdma_fail_prob = 0.4;
  net.enable_faults(fc);

  std::uint64_t remote = 0;
  eng.spawn("t", [&] {
    for (std::uint64_t i = 1; i <= 50; ++i) {
      net.write(0, 1, &remote, &i, sizeof(i));
      std::uint64_t back = 0;
      net.read(0, 1, &remote, &back, sizeof(back));
      EXPECT_EQ(back, i);  // the reliable verbs never lose an op
    }
  });
  eng.run();
  const NodeNetStats& s = net.stats(0);
  EXPECT_EQ(s.rdma_reads, 50u);   // logical ops, not attempts
  EXPECT_EQ(s.rdma_writes, 50u);
  EXPECT_GT(s.faults_injected, 0u);
  EXPECT_GT(s.retries, 0u);
  EXPECT_GT(s.backoff_time, 0);
  EXPECT_EQ(s.faults_injected, s.retries);  // every fault was retried
}

TEST(InterconnectFaults, ExponentialBackoffIsExactWithoutJitter) {
  Engine eng;
  NetConfig nc = faulty_net();
  nc.retry.max_attempts = 4;
  nc.retry.backoff_base = 1000;
  nc.retry.backoff_mult = 2.0;
  nc.retry.backoff_jitter = 0.0;  // deterministic arithmetic check
  Interconnect net(2, nc);
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 1;
  fc.rdma_fail_prob = 1.0;  // every attempt fails
  net.enable_faults(fc);

  std::uint64_t remote = 0, local = 0;
  eng.spawn("t", [&] {
    net.read(0, 1, &remote, &local, sizeof(local));
  });
  EXPECT_THROW(eng.run(), NetworkError);
  const NodeNetStats& s = net.stats(0);
  EXPECT_EQ(s.faults_injected, 4u);       // all four attempts failed
  EXPECT_EQ(s.retries, 3u);               // three re-attempts
  EXPECT_EQ(s.backoff_time, 1000 + 2000 + 4000);
}

TEST(InterconnectFaults, DeadlineCapsRetrying) {
  Engine eng;
  NetConfig nc = faulty_net();
  nc.retry.max_attempts = 1000000;
  nc.retry.backoff_base = 1000;
  nc.retry.backoff_jitter = 0.0;
  nc.retry.deadline = 10000;  // give up ~10 us in
  Interconnect net(2, nc);
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 2;
  fc.rdma_fail_prob = 1.0;
  net.enable_faults(fc);

  std::uint64_t remote = 0, local = 0;
  Time gave_up_at = 0;
  eng.spawn("t", [&] {
    try {
      net.read(0, 1, &remote, &local, sizeof(local));
      FAIL() << "expected NetworkError";
    } catch (const NetworkError&) {
      gave_up_at = argosim::now();
    }
  });
  eng.run();
  EXPECT_GE(gave_up_at, nc.retry.deadline);
  EXPECT_LT(net.stats(0).retries, 20u);  // deadline, not attempt budget
}

TEST(InterconnectFaults, FaultFreePathIdenticalWhenDisabled) {
  // A FaultConfig with enabled == false must leave the interconnect
  // byte-identical to one that never saw a FaultConfig at all.
  auto run_once = [](bool attach_disabled_config) {
    Engine eng;
    Interconnect net(2, faulty_net());
    if (attach_disabled_config) {
      FaultConfig fc;  // enabled defaults to false
      fc.seed = 99;
      fc.rdma_fail_prob = 1.0;  // must be ignored entirely
      net.enable_faults(fc);
    }
    eng.spawn("t", [&] {
      std::uint64_t remote = 0;
      for (std::uint64_t i = 0; i < 20; ++i) {
        net.write(0, 1, &remote, &i, sizeof(i));
        std::uint64_t v;
        net.read(0, 1, &remote, &v, sizeof(v));
      }
    });
    eng.run();
    return eng.now();
  };
  EXPECT_FALSE([] {
    Interconnect net(2, NetConfig{});
    return net.faults_enabled();
  }());
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(InterconnectFaults, DroppedAndDuplicatedMessages) {
  Engine eng;
  Interconnect net(2, faulty_net());
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 31;
  fc.msg_drop_prob = 0.3;
  fc.msg_dup_prob = 0.2;
  net.enable_faults(fc);

  const int to_send = 200;
  int accepted = 0;
  int received = 0;
  bool tx_done = false;
  eng.spawn("rx", [&] {
    // Drain until the sender is done and a full timeout passes with
    // nothing further in flight (duplicates trail by one msg_latency).
    for (;;) {
      if (net.recv_for(1, 50000))
        ++received;
      else if (tx_done)
        break;
    }
  });
  eng.spawn("tx", [&] {
    for (int i = 0; i < to_send; ++i) {
      argonet::Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = i;
      accepted += net.try_send(std::move(m)) ? 1 : 0;
    }
    tx_done = true;
  });
  eng.run();
  EXPECT_LT(accepted, to_send);            // some messages were dropped
  EXPECT_GT(received, accepted * 9 / 10);  // everything accepted arrives...
  EXPECT_GE(received, accepted);           // ...and duplicates add to it
  EXPECT_GT(received, 0);
  EXPECT_GT(net.stats(0).faults_injected, 0u);  // drops are counted
}

void expect_stats_equal(const NodeNetStats& a, const NodeNetStats& b) {
  EXPECT_EQ(a.rdma_reads, b.rdma_reads);
  EXPECT_EQ(a.rdma_writes, b.rdma_writes);
  EXPECT_EQ(a.rdma_atomics, b.rdma_atomics);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.backoff_time, b.backoff_time);
  EXPECT_EQ(a.nic_busy, b.nic_busy);
  EXPECT_EQ(a.posted_ops, b.posted_ops);
  EXPECT_EQ(a.posted_inflight_hwm, b.posted_inflight_hwm);
}

// ---------------------------------------------------------------------------
// Posted (pipelined) verbs under fault injection
// ---------------------------------------------------------------------------

TEST(PostedFaults, OnlyTheFaultedOpPaysItsRetries) {
  // Post six reads back to back at depth 8. The fault pattern is drawn
  // from the injector's shared stream, so an identical probe injector
  // tells us exactly which ops fault and how often — the completion time
  // and retry/backoff statistics must charge those retries to the faulted
  // ops alone, and to nothing else.
  NetConfig nc = faulty_net();
  nc.pipeline = 8;
  nc.retry.backoff_base = 1000;
  nc.retry.backoff_mult = 2.0;
  nc.retry.backoff_jitter = 0.0;
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 17;
  fc.rdma_fail_prob = 0.25;

  constexpr int kOps = 6;
  FaultInjector probe(fc, 2);
  int fails[kOps] = {};
  for (int i = 0; i < kOps; ++i)
    while (probe.plan_attempt(0, 1, 0).fail) ++fails[i];
  int total_fails = 0;
  bool any_clean = false, any_faulted = false;
  for (int f : fails) {
    total_fails += f;
    (f == 0 ? any_clean : any_faulted) = true;
  }
  ASSERT_TRUE(any_clean && any_faulted) << "seed no longer discriminates";

  // Mirror the cost model: op i's NIC charge ends at 104*(i+1); its wire
  // completes one rdma_latency later plus, per retry k, the backoff
  // 1000*2^k and a full retransmission (104 + 1000) folded into the
  // completion; in-order retirement takes the running max.
  Time expect_done = 0;
  Time expect_backoff = 0;
  for (int i = 0; i < kOps; ++i) {
    Time done = 104u * static_cast<Time>(i + 1) + 1000;
    for (int k = 0; k < fails[i]; ++k) {
      const Time backoff = 1000u << k;
      done += backoff + 104 + 1000;
      expect_backoff += backoff;
    }
    expect_done = std::max(expect_done, done);
  }

  auto run_once = [&] {
    Engine eng;
    Interconnect net(2, nc);
    net.enable_faults(fc);
    std::uint64_t remote[kOps], local[kOps] = {};
    for (int i = 0; i < kOps; ++i) remote[i] = 100 + static_cast<unsigned>(i);
    Time finished = 0;
    eng.spawn("t", [&] {
      for (int i = 0; i < kOps; ++i) net.post_read(0, 1, &remote[i], &local[i], 8);
      net.wait_all(0);
      finished = argosim::now();
      // In-order retirement: every read landed, in program order.
      for (int i = 0; i < kOps; ++i)
        EXPECT_EQ(local[i], 100u + static_cast<unsigned>(i));
    });
    eng.run();
    return std::make_pair(finished, net.stats(0));
  };
  const auto [t1, s1] = run_once();
  EXPECT_EQ(t1, expect_done);
  EXPECT_EQ(s1.faults_injected, static_cast<std::uint64_t>(total_fails));
  EXPECT_EQ(s1.retries, static_cast<std::uint64_t>(total_fails));
  EXPECT_EQ(s1.backoff_time, expect_backoff);
  EXPECT_EQ(s1.rdma_reads, static_cast<std::uint64_t>(kOps));
  // Same seed, same everything: pipelined chaos reruns are bit-identical.
  const auto [t2, s2] = run_once();
  EXPECT_EQ(t1, t2);
  expect_stats_equal(s1, s2);
}

TEST(PostedFaults, ExhaustedRetryBudgetSurfacesAtWait) {
  NetConfig nc = faulty_net();
  nc.pipeline = 4;
  nc.retry.max_attempts = 3;
  nc.retry.backoff_jitter = 0.0;
  FaultConfig fc;
  fc.enabled = true;
  fc.seed = 1;
  fc.rdma_fail_prob = 1.0;  // every attempt fails: the op is doomed
  Engine eng;
  Interconnect net(2, nc);
  net.enable_faults(fc);
  std::uint64_t remote = 42, local = 0;
  eng.spawn("t", [&] {
    argonet::PostedHandle h = net.post_read(0, 1, &remote, &local, 8);
    // The post itself returns normally — the failure is banked against the
    // handle and thrown only when its owner collects the completion.
    EXPECT_THROW(net.wait(h), NetworkError);
    EXPECT_EQ(local, 0u);  // a hard-failed op never applies its effect
    net.wait_all(0);       // failure already consumed by wait: no rethrow
  });
  eng.run();
  EXPECT_EQ(net.stats(0).faults_injected, 3u);
  EXPECT_EQ(net.stats(0).retries, 2u);
}

// ---------------------------------------------------------------------------
// Chaos runs of the fig13 mini-apps: numerically correct, fault counters
// alive, and bit-identical per seed
// ---------------------------------------------------------------------------

constexpr std::uint64_t kChaosSeeds[] = {11, 22, 33};

ClusterConfig chaos_cfg(std::uint64_t seed) {
  ClusterConfig c;
  c.nodes = 4;
  c.threads_per_node = 2;
  c.global_mem_bytes = 2048 * kPageSize;
  c.cache.cache_lines = 8192;
  c.cache.write_buffer_pages = 1024;
  c.faults.enabled = true;
  c.faults.seed = seed;
  c.faults.rdma_fail_prob = 0.02;
  c.faults.jitter_prob = 0.1;
  c.faults.jitter_max = 500;
  c.faults.brownout_mean_interval = 500000;
  c.faults.brownout_mean_duration = 50000;
  return c;
}

double rel_err(double a, double b) {
  return std::fabs(a - b) / std::max(1.0, std::fabs(b));
}

TEST(ChaosApps, LuCorrectAndDeterministicUnderFaults) {
  argoapps::LuParams p;
  p.n = 128;
  p.block = 32;
  const double ref = argoapps::lu_reference(p);
  for (const std::uint64_t seed : kChaosSeeds) {
    auto run_once = [&] {
      Cluster cl(chaos_cfg(seed));
      auto r = argoapps::lu_run_argo(cl, p);
      return std::make_pair(r, cl.net_stats());
    };
    const auto [r1, s1] = run_once();
    const auto [r2, s2] = run_once();
    // The factors are exact; the checksum is reassociated per owner.
    EXPECT_LT(rel_err(r1.checksum, ref), 1e-12) << "seed " << seed;
    EXPECT_GT(s1.faults_injected, 0u) << "seed " << seed;
    EXPECT_GT(s1.retries, 0u) << "seed " << seed;
    // Bit-identical rerun: same seed, same virtual time, same stats.
    EXPECT_EQ(r1.elapsed, r2.elapsed) << "seed " << seed;
    EXPECT_EQ(r1.checksum, r2.checksum) << "seed " << seed;
    expect_stats_equal(s1, s2);
  }
}

TEST(ChaosApps, MmCorrectUnderFaultsWithValidator) {
  argoapps::MmParams p;
  p.n = 96;
  p.iterations = 2;
  const double ref = argoapps::mm_reference(p);
  for (const std::uint64_t seed : kChaosSeeds) {
    Cluster cl(chaos_cfg(seed));
    ProtocolValidator validator(cl);
    validator.attach();
    const auto r = argoapps::mm_run_argo(cl, p);
    EXPECT_LT(rel_err(r.checksum, ref), 1e-12) << "seed " << seed;
    EXPECT_GT(cl.net_stats().faults_injected, 0u) << "seed " << seed;
    EXPECT_GT(cl.net_stats().retries, 0u) << "seed " << seed;
    // Coherence invariants hold at every barrier even under chaos.
    EXPECT_GT(validator.checks_run(), 0u);
    EXPECT_TRUE(validator.violations().empty())
        << "seed " << seed << ": " << validator.violations().front();
  }
}

TEST(ChaosApps, EpCorrectAndDeterministicUnderFaults) {
  argoapps::EpParams p;
  p.log2_pairs = 14;
  p.chunks = 64;
  const auto ref = argoapps::ep_reference(p);
  for (const std::uint64_t seed : kChaosSeeds) {
    auto run_once = [&] {
      Cluster cl(chaos_cfg(seed));
      return argoapps::ep_run_argo(cl, p);
    };
    const auto r1 = run_once();
    const auto r2 = run_once();
    EXPECT_LT(rel_err(r1.tally.sx, ref.sx), 1e-12) << "seed " << seed;
    EXPECT_LT(rel_err(r1.tally.sy, ref.sy), 1e-12) << "seed " << seed;
    EXPECT_EQ(r1.tally.accepted, ref.accepted) << "seed " << seed;
    EXPECT_EQ(r1.tally.q, ref.q) << "seed " << seed;
    EXPECT_EQ(r1.elapsed, r2.elapsed) << "seed " << seed;
  }
}

TEST(ChaosApps, PipelinedAllModesCorrectDeterministicAndValidated) {
  // Pipelining must not change what the protocol computes: every
  // classification mode, under every chaos seed, at depth 4 — checksum
  // exact, coherence invariants clean at every barrier, rerun
  // bit-identical.
  argoapps::MmParams p;
  p.n = 96;
  p.iterations = 2;
  const double ref = argoapps::mm_reference(p);
  const Mode modes[] = {Mode::S, Mode::PSNaive, Mode::PS, Mode::PS3};
  for (const Mode mode : modes) {
    for (const std::uint64_t seed : kChaosSeeds) {
      auto run_once = [&] {
        ClusterConfig cfg = chaos_cfg(seed);
        cfg.cache.classification = mode;
        cfg.net.pipeline = 4;
        Cluster cl(cfg);
        ProtocolValidator validator(cl);
        validator.attach();
        const auto r = argoapps::mm_run_argo(cl, p);
        EXPECT_GT(validator.checks_run(), 0u);
        EXPECT_TRUE(validator.violations().empty())
            << "mode " << static_cast<int>(mode) << " seed " << seed << ": "
            << validator.violations().front();
        return std::make_pair(r, cl.net_stats());
      };
      const auto [r1, s1] = run_once();
      const auto [r2, s2] = run_once();
      EXPECT_LT(rel_err(r1.checksum, ref), 1e-12)
          << "mode " << static_cast<int>(mode) << " seed " << seed;
      EXPECT_GT(s1.faults_injected, 0u) << "seed " << seed;
      EXPECT_EQ(r1.elapsed, r2.elapsed)
          << "mode " << static_cast<int>(mode) << " seed " << seed;
      EXPECT_EQ(r1.checksum, r2.checksum);
      expect_stats_equal(s1, s2);
    }
  }
}

TEST(ChaosApps, PipeliningPreservesFaultFreeResultsAndCutsTime) {
  // Depth 4 versus depth 1 on a clean (fault-free) run: identical
  // checksum, strictly less virtual time, and the posted machinery
  // actually engaged (posted_ops > 0, high-water mark > 1).
  argoapps::MmParams p;
  p.n = 96;
  p.iterations = 2;
  auto run_depth = [&](int depth) {
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.threads_per_node = 2;
    cfg.global_mem_bytes = 2048 * kPageSize;
    cfg.cache.cache_lines = 8192;
    cfg.cache.write_buffer_pages = 1024;
    cfg.net.pipeline = depth;
    Cluster cl(cfg);
    const auto r = argoapps::mm_run_argo(cl, p);
    return std::make_pair(r, cl.net_stats());
  };
  const auto [r1, s1] = run_depth(1);
  const auto [r4, s4] = run_depth(4);
  EXPECT_EQ(r1.checksum, r4.checksum);
  EXPECT_EQ(s1.posted_ops, 0u);
  EXPECT_GT(s4.posted_ops, 0u);
  EXPECT_GT(s4.posted_inflight_hwm, 1u);
  EXPECT_LT(r4.elapsed, r1.elapsed);
}

// ---------------------------------------------------------------------------
// ProtocolValidator: clean on healthy configurations, loud on a
// deliberately broken protocol
// ---------------------------------------------------------------------------

TEST(ProtocolValidator, CleanOnHealthyFaultFreeRun) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.threads_per_node = 2;
  cfg.global_mem_bytes = 1024 * kPageSize;
  Cluster cl(cfg);
  ProtocolValidator validator(cl);
  validator.attach();
  argoapps::MmParams p;
  p.n = 64;
  p.iterations = 2;
  const auto r = argoapps::mm_run_argo(cl, p);
  EXPECT_LT(rel_err(r.checksum, argoapps::mm_reference(p)), 1e-12);
  EXPECT_GT(validator.checks_run(), 0u);
  EXPECT_TRUE(validator.violations().empty())
      << validator.violations().front();
}

TEST(ProtocolValidator, CatchesSkippedSelfDowngrade) {
  // Break the protocol on purpose: a node that skips its SD fence leaves
  // pages dirty across the barrier; under PS3 a single-writer page also
  // survives SI, so the post-barrier check must flag it.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 1;
  cfg.global_mem_bytes = 64 * kPageSize;
  cfg.cache.classification = Mode::PS3;
  cfg.cache.debug_skip_sd_fence = true;
  Cluster cl(cfg);
  // Blocked mapping: pages 0..31 homed on node 0, 32..63 on node 1.
  auto data = cl.alloc<std::uint64_t>(
      40 * kPageSize / sizeof(std::uint64_t));
  cl.reset_classification();

  ProtocolValidator validator(cl);
  validator.attach();
  cl.run([&](argo::Thread& t) {
    // Each node writes a page homed on the *other* node, so the write
    // goes through the page cache and stays dirty when SD is skipped.
    const std::size_t per_page = kPageSize / sizeof(std::uint64_t);
    const std::size_t idx = t.node() == 0 ? 35 * per_page : 0;
    t.store(data + idx, std::uint64_t{0xabcd} + t.node());
    t.barrier();
  });
  ASSERT_FALSE(validator.violations().empty());
  bool mentions_dirty = false;
  for (const auto& v : validator.violations())
    if (v.find("still dirty") != std::string::npos) mentions_dirty = true;
  EXPECT_TRUE(mentions_dirty);
}

// ---------------------------------------------------------------------------
// Crash-stop schedules: detection, lease recovery, degraded-mode runs.
// Crashes are deterministic (virtual-time triggers, no RNG draws); the
// seeds vary the *transient* fault pattern layered on top, and every
// scenario must rerun bit-identically per seed.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kCrashSeeds[] = {101, 202, 303};

ClusterConfig crash_cfg(std::uint64_t seed) {
  ClusterConfig c;
  c.nodes = 4;
  c.threads_per_node = 2;
  c.global_mem_bytes = 2048 * kPageSize;
  c.cache.cache_lines = 8192;
  c.cache.write_buffer_pages = 1024;
  c.faults.enabled = true;  // crash schedules ride the fault channel
  c.faults.seed = seed;
  c.faults.rdma_fail_prob = 0.01;  // light transient chaos so seeds matter
  c.membership.enabled = true;
  return c;
}

// Worst-case virtual delay from crash to declaration under crash_cfg:
// miss_threshold heartbeats of misses plus one alignment interval.
Time detect_bound(const ClusterConfig& c) {
  return static_cast<Time>(c.membership.miss_threshold + 2) *
         c.membership.heartbeat_interval;
}

TEST(CrashRecovery, HqdlHolderCrashRecoversViaLease) {
  for (const std::uint64_t seed : kCrashSeeds) {
    auto run_once = [&] {
      ClusterConfig cfg = crash_cfg(seed);
      cfg.faults.crashes.push_back(
          argonet::CrashEvent{.node = 2, .at = 400'000});
      Cluster cl(cfg);
      ProtocolValidator validator(cl);
      validator.attach();
      auto counter = cl.alloc<std::uint64_t>(1);
      argosync::HqdLock lock(cl);
      constexpr int kIncs = 20;
      const Time elapsed = cl.run([&](argo::Thread& t) {
        if (t.node() == 2) {
          // Hog the lock: become this node's helper (thread 0) or park in
          // its delegation queue (thread 1), so the crash lands squarely
          // on the node holding the global MCS lock.
          lock.execute(
              t, [](argo::Thread& th) { for (;;) th.compute(10'000); },
              /*wait=*/true);
          return;  // unreachable: the crash kills this fiber
        }
        t.compute(100'000);  // let node 2 take the lock first
        for (int i = 0; i < kIncs; ++i)
          lock.execute(
              t,
              [&](argo::Thread& th) {
                th.store(counter, th.load(counter) + 1);
              },
              /*wait=*/true);
        t.barrier();
      });
      const std::uint64_t total = *cl.gmem().home_ptr(counter);
      const auto& ms = cl.membership().stats();
      EXPECT_TRUE(validator.violations().empty())
          << "seed " << seed << ": " << validator.violations().front();
      return std::make_tuple(elapsed, total, ms.deaths, ms.locks_recovered);
    };
    const auto [e1, v1, d1, l1] = run_once();
    // Every surviving thread got the lock back after the lease reset.
    EXPECT_EQ(v1, 3u * 2u * 20u) << "seed " << seed;
    EXPECT_EQ(d1, 1u) << "seed " << seed;
    EXPECT_GE(l1, 1u) << "seed " << seed;  // the forced MCS queue reset
    // Same seed, same everything: crash recovery replays bit-identically.
    const auto [e2, v2, d2, l2] = run_once();
    EXPECT_EQ(e1, e2) << "seed " << seed;
    EXPECT_EQ(v1, v2) << "seed " << seed;
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(l1, l2);
  }
}

TEST(CrashRecovery, HomeNodeCrashDuringSdFenceFailsOver) {
  // Every live thread dirties pages homed on node 3, then fences; node 3
  // dies while the write buffers drain, so the writebacks fail over to
  // the reconstructed home on the successor.
  constexpr std::size_t kWordsPerPage = kPageSize / sizeof(std::uint64_t);
  constexpr std::size_t kPagesPerThread = 8;
  for (const std::uint64_t seed : kCrashSeeds) {
    auto run_once = [&] {
      ClusterConfig cfg = crash_cfg(seed);
      cfg.faults.crashes.push_back(
          argonet::CrashEvent{.node = 3, .at = 150'000});
      Cluster cl(cfg);
      ProtocolValidator validator(cl);
      validator.attach();
      // 8 threads × 8 pages at the bottom of node 3's blocked region: all
      // homed on the doomed node. (alloc_on_node is for sub-page sync
      // variables; bulk data just addresses the region directly.)
      const argomem::gptr<std::uint64_t> data{3 * cl.gmem().pages_per_node() *
                                              kPageSize};
      const Time elapsed = cl.run([&](argo::Thread& t) {
        if (t.node() == 3) return;  // the victim contributes nothing
        const std::size_t base =
            static_cast<std::size_t>(t.gid()) * kPagesPerThread;
        for (std::size_t p = 0; p < kPagesPerThread; ++p)
          t.store(data + (base + p) * kWordsPerPage,
                  0xbeef0000u + t.gid() * 100 + p);
        t.barrier();  // SD drain overlaps the crash → failover + retry
        for (std::size_t p = 0; p < kPagesPerThread; ++p)
          EXPECT_EQ(t.load(data + (base + p) * kWordsPerPage),
                    0xbeef0000u + t.gid() * 100 + p)
              << "seed " << seed;
        t.barrier();
      });
      const auto& ms = cl.membership().stats();
      EXPECT_TRUE(validator.violations().empty())
          << "seed " << seed << ": " << validator.violations().front();
      return std::make_tuple(elapsed, ms.deaths, ms.pages_recovered,
                             ms.pages_lost);
    };
    const auto [e1, d1, r1, l1] = run_once();
    EXPECT_EQ(d1, 1u) << "seed " << seed;
    // The survivors' dirty copies rebuilt their pages on the successor.
    EXPECT_GT(r1, 0u) << "seed " << seed;
    const auto [e2, d2, r2, l2] = run_once();
    EXPECT_EQ(e1, e2) << "seed " << seed;
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(l1, l2);
  }
}

TEST(CrashRecovery, BarrierCompletesOverSurvivingView) {
  // Node 1 is the straggler of every round and dies mid-computation; the
  // barrier must complete over the surviving view instead of hanging.
  constexpr int kRounds = 10;
  for (const std::uint64_t seed : kCrashSeeds) {
    auto run_once = [&] {
      ClusterConfig cfg = crash_cfg(seed);
      cfg.faults.crashes.push_back(
          argonet::CrashEvent{.node = 1, .at = 200'000});
      Cluster cl(cfg);
      std::uint64_t rounds_done[8] = {};
      const Time elapsed = cl.run([&](argo::Thread& t) {
        for (int r = 0; r < kRounds; ++r) {
          t.compute(t.node() == 1 ? 500'000 : 20'000);
          t.barrier();
          ++rounds_done[t.gid()];
        }
      });
      std::uint64_t live_rounds = 0;
      for (int g = 0; g < 8; ++g)
        if (g / 2 != 1) live_rounds += rounds_done[g];
      return std::make_tuple(elapsed, live_rounds,
                             cl.membership().stats().deaths);
    };
    const auto [e1, r1, d1] = run_once();
    EXPECT_EQ(r1, 6u * kRounds) << "seed " << seed;  // no survivor stranded
    EXPECT_EQ(d1, 1u) << "seed " << seed;
    const auto [e2, r2, d2] = run_once();
    EXPECT_EQ(e1, e2) << "seed " << seed;
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(d1, d2);
  }
}

TEST(CrashRecovery, UnsharedPageOnDeadHomeIsLost) {
  // A page homed on the victim whose only copies were dropped at an SI
  // fence before the crash is unrecoverable: the directory word names
  // sharers but no survivor holds the data. Recovery zeroes it and counts
  // it lost — reads after recovery see zeros, not stale garbage.
  ClusterConfig cfg = crash_cfg(101);
  cfg.faults.crashes.push_back(argonet::CrashEvent{.node = 3, .at = 600'000});
  Cluster cl(cfg);
  // A page homed on node 3, written by two nodes: multi-writer shared, so
  // BOTH cached copies self-invalidate at the barrier — by crash time no
  // survivor holds the data.
  const argomem::gptr<std::uint64_t> page{3 * cl.gmem().pages_per_node() *
                                          kPageSize};
  std::uint64_t after = ~0ull;
  cl.run([&](argo::Thread& t) {
    if (t.node() == 0 && t.tid() == 0) t.store(page, std::uint64_t{777});
    if (t.node() == 1 && t.tid() == 0) t.store(page + 1, std::uint64_t{888});
    // Everyone (node 3 included) joins this barrier, so it completes
    // healthily long before the crash; the SI fence drops both MW copies.
    t.barrier();
    t.compute(1'500'000);  // node 3 dies at 600k, mid-compute
    t.barrier();  // completes over the surviving view
    if (t.node() == 0 && t.tid() == 0) after = t.load(page);
  });
  EXPECT_EQ(after, 0u);  // lost page reads as zeros after failover
  EXPECT_GE(cl.membership().stats().pages_lost, 1u);
  EXPECT_EQ(cl.membership().stats().deaths, 1u);
}

TEST(CrashRecovery, DetectionAndRejoinAsFreshNode) {
  ClusterConfig cfg = crash_cfg(202);
  cfg.faults.crashes.push_back(argonet::CrashEvent{
      .node = 2, .at = 200'000, .rejoin_at = 1'500'000});
  Cluster cl(cfg);
  const auto& svc = cl.membership();
  Time declared_at = 0;
  bool live_mid_run = true;
  cl.run([&](argo::Thread& t) {
    if (t.node() != 0 || t.tid() != 0) {
      t.compute(3'000'000);
      return;
    }
    // Wait out detection, note the declaration time, then the rejoin.
    while (svc.is_live(2)) t.compute(10'000);
    declared_at = t.now();
    live_mid_run = svc.is_live(2);
    t.compute(3'000'000 - (t.now() - 0));
  });
  EXPECT_FALSE(live_mid_run);
  EXPECT_GT(declared_at, 200'000);
  EXPECT_LE(declared_at, 200'000 + detect_bound(cfg));
  // Rejoined as a fresh node: probed live again, but permanently departed
  // from collectives and its old worker fibers are gone for good.
  EXPECT_TRUE(svc.is_live(2));
  EXPECT_EQ(svc.stats().deaths, 1u);
  EXPECT_EQ(svc.stats().rejoins, 1u);
  EXPECT_TRUE(svc.departed_set().test(2));
  EXPECT_GE(svc.epoch(), 2u);
  EXPECT_EQ(svc.stats().detect_ns.samples, 1u);
}

TEST(CrashRecovery, HighNodeDeathAt128NodesRebuildsUpperWords) {
  // 128 nodes: four-word directory entries on every page. The victim sits
  // past node 31, so its reader/writer bits — and the survivor-OR rebuild
  // and scrub that must clear them — live in the entry's last word, the
  // region the old single-word encoding could not even represent.
  ClusterConfig cfg = crash_cfg(404);
  cfg.nodes = 128;
  cfg.threads_per_node = 1;
  cfg.cache.cache_lines = 1024;
  cfg.global_mem_bytes = 1024 * kPageSize;  // 8 pages per node
  constexpr int kVictim = 100;
  cfg.faults.crashes.push_back(
      argonet::CrashEvent{.node = kVictim, .at = 5'000'000});
  Cluster cl(cfg);
  // pageA: homed on node 0, read by the victim before dying — the
  // victim's reader bit lands in entry word 3.
  const argomem::gptr<std::uint64_t> pageA{0};
  // pageB: homed on the victim, privately written by node 0 — recoverable
  // from the survivor's copy after the home dies.
  const argomem::gptr<std::uint64_t> pageB{
      static_cast<std::uint64_t>(kVictim) * cl.gmem().pages_per_node() *
      kPageSize};
  std::uint64_t after = 0;
  cl.run([&](argo::Thread& t) {
    if (t.node() == 0) {
      t.store(pageA, std::uint64_t{111});
      t.store(pageB, std::uint64_t{222});
    }
    t.barrier();
    if (t.node() == kVictim) (void)t.load(pageA);
    t.barrier();
    t.compute(15'000'000);  // victim dies at 5ms, mid-compute
    t.barrier();            // completes over the surviving view
    if (t.node() == 0) after = t.load(pageB);
  });
  EXPECT_EQ(after, 222u);
  EXPECT_EQ(cl.membership().stats().deaths, 1u);
  EXPECT_FALSE(cl.membership().is_live(kVictim));
  EXPECT_GE(cl.membership().stats().pages_recovered, 1u);
  // The victim's bits are gone from pageA's home entry (word 3), while
  // node 0's own registration survives untouched in word 0.
  const argodir::DirEntry entry = cl.dir().host_entry(0);
  EXPECT_FALSE(entry.is_reader(kVictim));
  EXPECT_FALSE(entry.is_writer(kVictim));
  EXPECT_TRUE(entry.is_writer(0));
}

TEST(CrashRecovery, MembershipIdleRunsAreBitIdentical) {
  // Membership enabled but no crash schedule: the heartbeat machinery must
  // be deterministic, and two runs must agree to the virtual nanosecond.
  auto run_once = [] {
    ClusterConfig cfg = crash_cfg(303);
    Cluster cl(cfg);
    argoapps::MmParams p;
    p.n = 64;
    p.iterations = 1;
    const auto r = argoapps::mm_run_argo(cl, p);
    return std::make_tuple(r.elapsed, r.checksum,
                           cl.membership().stats().probes,
                           cl.membership().stats().deaths);
  };
  const auto [e1, c1, p1, d1] = run_once();
  const auto [e2, c2, p2, d2] = run_once();
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(p1, p2);
  EXPECT_GT(p1, 0u);
  EXPECT_EQ(d1, 0u);
  EXPECT_EQ(d1, d2);
}

// ---------------------------------------------------------------------------
// Directed timeout paths: a bounded wait must fail fast once the peer it
// depends on is dead, not ride out the full timeout.
// ---------------------------------------------------------------------------

TEST(CrashTimeouts, SimMutexTryLockFailsFastWhenHolderKilled) {
  Engine eng;
  argosim::SimMutex m;
  bool got = true;
  Time returned_at = 0;
  argosim::SimThread* holder = eng.spawn("holder", [&] {
    m.lock();
    argosim::delay(1'000'000'000);
    m.unlock();
  });
  eng.spawn("killer", [&] {
    argosim::delay(50'000);
    Engine::current()->kill(holder);
  });
  eng.spawn("waiter", [&] {
    argosim::delay(1'000);
    got = m.try_lock_for(10'000'000);
    returned_at = argosim::now();
  });
  eng.run();
  EXPECT_FALSE(got);  // a dead holder can never hand over
  // Noticed within the owner poll granularity, nowhere near the deadline.
  EXPECT_LT(returned_at, 50'000 + 3 * argosim::SimMutex::kOwnerPoll);
}

TEST(CrashTimeouts, McsTryAcquireFailsFastWhenTailNodeDead) {
  ClusterConfig cfg = crash_cfg(101);
  cfg.threads_per_node = 1;
  cfg.faults.crashes.push_back(argonet::CrashEvent{.node = 1, .at = 300'000});
  Cluster cl(cfg);
  argosync::GlobalMcsLock lock(cl);
  bool got = true;
  Time returned_at = 0;
  cl.run([&](argo::Thread& t) {
    if (t.node() == 1) {
      lock.acquire(t);
      for (;;) t.compute(10'000);  // die holding the lock
    }
    if (t.node() == 0) {
      t.compute(100'000);  // let node 1 take the lock first
      got = lock.try_acquire_for(t, 50'000'000);
      returned_at = t.now();
    }
  });
  EXPECT_FALSE(got);
  // Returned at the death declaration, far before the 50 ms deadline.
  EXPECT_LT(returned_at, 300'000 + detect_bound(cfg) + 100'000);
}

TEST(CrashTimeouts, DsmMutexTryLockFailsFastWhenHolderNodeDead) {
  ClusterConfig cfg = crash_cfg(202);
  cfg.threads_per_node = 1;
  cfg.faults.crashes.push_back(argonet::CrashEvent{.node = 1, .at = 300'000});
  Cluster cl(cfg);
  argosync::DsmMutex mtx(cl);
  bool got = true;
  Time returned_at = 0;
  cl.run([&](argo::Thread& t) {
    if (t.node() == 1) {
      mtx.lock(t);
      for (;;) t.compute(10'000);
    }
    if (t.node() == 0) {
      t.compute(100'000);
      got = mtx.try_lock_for(t, 50'000'000);
      returned_at = t.now();
    }
  });
  EXPECT_FALSE(got);
  EXPECT_LT(returned_at, 300'000 + detect_bound(cfg) + 100'000);
}

// ---------------------------------------------------------------------------
// Full mini-apps surviving one crash, with the epoch-aware validator on
// ---------------------------------------------------------------------------

TEST(CrashRecoveryApps, LuSurvivesOneCrash) {
  auto run_once = [] {
    ClusterConfig cfg = crash_cfg(101);
    // The fault-free run takes ~731k virtual ns; 400k lands mid-run.
    cfg.faults.crashes.push_back(
        argonet::CrashEvent{.node = 3, .at = 400'000});
    Cluster cl(cfg);
    ProtocolValidator validator(cl);
    validator.attach();
    argoapps::LuParams p;
    p.n = 128;
    p.block = 32;
    const auto r = argoapps::lu_run_argo(cl, p);
    EXPECT_GT(validator.checks_run(), 0u);
    EXPECT_TRUE(validator.violations().empty())
        << validator.violations().front();
    EXPECT_EQ(cl.membership().stats().deaths, 1u);
    return std::make_pair(r.elapsed, r.checksum);
  };
  const auto [e1, c1] = run_once();
  const auto [e2, c2] = run_once();
  EXPECT_EQ(e1, e2);  // degraded-mode runs replay bit-identically
  EXPECT_EQ(c1, c2);
}

TEST(CrashRecoveryApps, MmSurvivesOneCrash) {
  auto run_once = [] {
    ClusterConfig cfg = crash_cfg(202);
    // The fault-free run takes ~458k virtual ns; 250k lands mid-run.
    cfg.faults.crashes.push_back(
        argonet::CrashEvent{.node = 2, .at = 250'000});
    Cluster cl(cfg);
    ProtocolValidator validator(cl);
    validator.attach();
    argoapps::MmParams p;
    p.n = 96;
    p.iterations = 2;
    const auto r = argoapps::mm_run_argo(cl, p);
    EXPECT_GT(validator.checks_run(), 0u);
    EXPECT_TRUE(validator.violations().empty())
        << validator.violations().front();
    EXPECT_EQ(cl.membership().stats().deaths, 1u);
    return std::make_pair(r.elapsed, r.checksum);
  };
  const auto [e1, c1] = run_once();
  const auto [e2, c2] = run_once();
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(c1, c2);
}

TEST(CrashRecoveryApps, EpSurvivesOneCrash) {
  auto run_once = [] {
    ClusterConfig cfg = crash_cfg(303);
    // The fault-free run takes ~142k virtual ns; the death is declared
    // while the survivors wait at the final barrier.
    cfg.faults.crashes.push_back(
        argonet::CrashEvent{.node = 1, .at = 70'000});
    Cluster cl(cfg);
    ProtocolValidator validator(cl);
    validator.attach();
    argoapps::EpParams p;
    p.log2_pairs = 14;
    p.chunks = 64;
    const auto r = argoapps::ep_run_argo(cl, p);
    EXPECT_GT(validator.checks_run(), 0u);
    EXPECT_TRUE(validator.violations().empty())
        << validator.violations().front();
    EXPECT_EQ(cl.membership().stats().deaths, 1u);
    return std::make_pair(r.elapsed, r.tally.sx);
  };
  const auto [e1, s1] = run_once();
  const auto [e2, s2] = run_once();
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(s1, s2);
}

TEST(ProtocolValidator, QuiescentChecksPassMidRun) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.threads_per_node = 1;
  cfg.global_mem_bytes = 64 * kPageSize;
  Cluster cl(cfg);
  auto data = cl.alloc<std::uint64_t>(kPageSize / sizeof(std::uint64_t));
  cl.reset_classification();
  ProtocolValidator validator(cl);
  cl.run([&](argo::Thread& t) {
    if (t.node() == 1) {
      t.store(data, std::uint64_t{7});  // dirty page cached on node 1
      validator.check(1);  // anytime invariants hold with dirty data live
    }
    t.barrier();
  });
  EXPECT_GT(validator.checks_run(), 0u);
  EXPECT_TRUE(validator.violations().empty())
      << validator.violations().front();
}

}  // namespace
